//! Input validation for simulation runs: configuration, kernel, and launch
//! geometry checks performed before any machine state is built.
//!
//! Everything a caller hands to [`Gpu::run`](crate::Gpu::run) —
//! configuration, kernel, launch geometry — is checked here first, so
//! malformed input surfaces as a typed [`ValidationError`] (wrapped in
//! [`SimError::Invalid`](crate::SimError)) instead of a panic inside the
//! cycle loop or a silent spin to the cycle limit. Panics that remain in
//! the simulator proper are *internal invariants* (conservation properties
//! the audit layer cross-checks), not input errors.

use std::fmt;

use prf_isa::{GridConfig, Kernel, KernelValidator};

use crate::config::GpuConfig;

/// A rejected simulation input, with the layer that rejected it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A [`GpuConfig`] field is unusable.
    Config {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The kernel failed semantic validation (see
    /// [`prf_isa::ValidationError`] for the instruction-level provenance).
    Kernel {
        /// Name of the rejected kernel.
        kernel: String,
        /// The instruction-level error.
        source: prf_isa::ValidationError,
    },
    /// The kernel is individually valid but the launch can never make
    /// progress on this machine (a CTA that can never be dispatched would
    /// otherwise spin silently to the cycle limit).
    Launch {
        /// Name of the rejected kernel.
        kernel: String,
        /// Why the launch is impossible.
        reason: String,
    },
    /// A fault-injection configuration is unusable (checked by the
    /// experiment layer, which owns the fault model).
    Fault {
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Config { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            ValidationError::Kernel { kernel, source } => {
                write!(f, "invalid kernel `{kernel}`: {source}")
            }
            ValidationError::Launch { kernel, reason } => {
                write!(f, "impossible launch of `{kernel}`: {reason}")
            }
            ValidationError::Fault { reason } => write!(f, "invalid fault config: {reason}"),
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidationError::Kernel { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn config_err(field: &'static str, reason: impl Into<String>) -> ValidationError {
    ValidationError::Config {
        field,
        reason: reason.into(),
    }
}

/// Checks a [`GpuConfig`] for structural usability, returning the first
/// offending field. [`GpuConfig::validate`] is the panicking wrapper.
pub fn check_config(config: &GpuConfig) -> Result<(), ValidationError> {
    let positive: [(&'static str, usize); 9] = [
        ("num_sms", config.num_sms),
        ("max_warps_per_sm", config.max_warps_per_sm),
        ("max_ctas_per_sm", config.max_ctas_per_sm),
        ("num_schedulers", config.num_schedulers),
        ("issue_per_scheduler", config.issue_per_scheduler),
        ("num_rf_banks", config.num_rf_banks),
        ("num_collectors", config.num_collectors),
        ("rf_registers", config.rf_registers),
        ("sm_threads", config.sm_threads),
    ];
    for (field, value) in positive {
        if value == 0 {
            return Err(config_err(field, "must be at least 1"));
        }
    }
    if !config.global_mem_words.is_power_of_two() {
        return Err(config_err(
            "global_mem_words",
            format!(
                "{} words: global memory must be a power of two for address wrapping",
                config.global_mem_words
            ),
        ));
    }
    if config.max_cycles == 0 {
        return Err(config_err("max_cycles", "must be at least 1"));
    }
    Ok(())
}

/// Checks that a kernel + grid can actually run on `config`: the kernel
/// passes semantic validation (with the machine's shared-memory bound) and
/// at least one CTA of the launch fits on an SM.
pub fn check_launch(
    config: &GpuConfig,
    kernel: &Kernel,
    grid: GridConfig,
) -> Result<(), ValidationError> {
    KernelValidator::new()
        .with_shared_mem_words(config.shared_mem_words.min(u32::MAX as usize) as u32)
        .validate(kernel)
        .map_err(|source| ValidationError::Kernel {
            kernel: kernel.name().to_string(),
            source,
        })?;

    let launch_err = |reason: String| ValidationError::Launch {
        kernel: kernel.name().to_string(),
        reason,
    };
    if grid.num_ctas == 0 {
        return Err(launch_err("grid has zero CTAs".into()));
    }
    if grid.threads_per_cta == 0 {
        return Err(launch_err("CTA has zero threads".into()));
    }
    let warps_per_cta = grid.warps_per_cta() as usize;
    if warps_per_cta > config.max_warps_per_sm {
        return Err(launch_err(format!(
            "a CTA needs {warps_per_cta} warps but the SM has only {} warp slots",
            config.max_warps_per_sm
        )));
    }
    // Mirrors Sm::try_dispatch_cta's register-capacity gate: a CTA whose
    // register demand exceeds the whole RF never dispatches, and the run
    // would otherwise spin to the cycle limit.
    let regs = kernel.regs_per_thread().max(1) as usize;
    let regs_per_cta = warps_per_cta * 32 * regs;
    if regs_per_cta > config.rf_registers {
        return Err(launch_err(format!(
            "a CTA needs {regs_per_cta} registers ({warps_per_cta} warps x 32 lanes x {regs} \
             regs/thread) but the register file holds {}",
            config.rf_registers
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::{KernelBuilder, Reg};

    fn tiny_kernel(regs: u8) -> Kernel {
        let mut kb = KernelBuilder::new("tiny");
        for r in 0..regs {
            kb.mov_imm(Reg(r), 1);
        }
        kb.exit();
        kb.build().unwrap()
    }

    #[test]
    fn default_configs_check_clean() {
        assert_eq!(check_config(&GpuConfig::kepler_gtx780()), Ok(()));
        assert_eq!(check_config(&GpuConfig::kepler_single_sm()), Ok(()));
    }

    #[test]
    fn zero_fields_rejected_by_name() {
        let cfg = GpuConfig {
            num_rf_banks: 0,
            ..GpuConfig::kepler_single_sm()
        };
        let err = check_config(&cfg).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::Config {
                field: "num_rf_banks",
                ..
            }
        ));
        assert!(err.to_string().contains("num_rf_banks"));
    }

    #[test]
    fn non_pow2_memory_rejected() {
        let cfg = GpuConfig {
            global_mem_words: 1000,
            ..GpuConfig::kepler_single_sm()
        };
        let err = check_config(&cfg).unwrap_err();
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn launch_that_fits_checks_clean() {
        let cfg = GpuConfig::kepler_single_sm();
        assert_eq!(
            check_launch(&cfg, &tiny_kernel(8), GridConfig::new(4, 64)),
            Ok(())
        );
    }

    #[test]
    fn oversized_cta_rejected_as_impossible_launch() {
        let cfg = GpuConfig {
            rf_registers: 64,
            ..GpuConfig::kepler_single_sm()
        };
        let err = check_launch(&cfg, &tiny_kernel(8), GridConfig::new(1, 64)).unwrap_err();
        match &err {
            ValidationError::Launch { kernel, reason } => {
                assert_eq!(kernel, "tiny");
                assert!(reason.contains("register file"), "{reason}");
            }
            other => panic!("expected Launch, got {other:?}"),
        }
    }

    #[test]
    fn cta_wider_than_warp_slots_rejected() {
        let cfg = GpuConfig {
            max_warps_per_sm: 2,
            ..GpuConfig::kepler_single_sm()
        };
        let err = check_launch(&cfg, &tiny_kernel(2), GridConfig::new(1, 256)).unwrap_err();
        assert!(err.to_string().contains("warp slots"), "{err}");
    }

    #[test]
    fn invalid_kernel_carries_instruction_provenance() {
        use prf_isa::{Instruction, Opcode};
        let mut kb = KernelBuilder::new("hostile");
        kb.push(Instruction::new(Opcode::Bra)); // no target
        kb.exit();
        let k = kb.build().unwrap();
        let err =
            check_launch(&GpuConfig::kepler_single_sm(), &k, GridConfig::new(1, 32)).unwrap_err();
        assert!(err.to_string().contains("instr 0"), "{err}");
        assert!(err.to_string().contains("hostile"), "{err}");
    }
}
