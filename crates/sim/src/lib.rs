//! # prf-sim — cycle-level Kepler-like GPU SM simulator
//!
//! A from-scratch Rust stand-in for GPGPU-Sim v3.02, modelling the
//! microarchitectural mechanisms that the Pilot Register File paper
//! (HPCA 2017) depends on:
//!
//! * 4 warp schedulers × 2-issue per SM (GTO, LRR, two-level, fetch-group),
//! * SIMT divergence with IPDOM reconvergence stacks,
//! * per-warp scoreboards,
//! * 24 operand collectors competing for 24 register-file banks through an
//!   arbiter, where each access occupies its bank for the latency chosen by
//!   a pluggable [`RegisterFileModel`] — this is how 1-cycle FRF vs 3-cycle
//!   SRF accesses turn into real pipeline pressure,
//! * a load/store unit with warp-level coalescing and a small L1,
//! * CTA dispatch over multiple SMs sharing functional global memory.
//!
//! Execution is *functional-first*: register values are real and branches
//! are data-dependent, so dynamic register-access counts (the paper's
//! Fig. 2) emerge from actual execution rather than from synthetic traces.
//!
//! The entry point is [`Gpu::run`]; see its example.

pub mod audit;
pub mod collector;
pub mod config;
pub mod exec;
pub mod gpu;
pub mod mem;
pub mod occupancy;
pub mod rf;
pub mod sampling;
pub mod scheduler;
pub mod scoreboard;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod validate;
pub mod warp;

pub use audit::{AuditReport, AuditViolation, Auditor};
pub use config::{GpuConfig, SchedulerPolicy};
pub use gpu::{Gpu, SimError};
pub use mem::{GlobalMemory, GmemView, SharedMemory};
pub use occupancy::{Occupancy, OccupancyLimiter};
pub use rf::{
    AccessKind, BaselineRf, RegisterFileModel, RepairKind, ResolvedAccess, RfPartition,
    WarpLifecycle,
};
pub use sampling::{SampleSeries, SampleWindow, SamplingConfig, SmSampler};
pub use sm::{KernelImage, Sm};
pub use stats::{PartitionAccessCounts, RegisterAccessHistogram, SimResult, SmStats};
pub use trace::{normalize_trace, TraceEvent, TraceRing};
pub use validate::{check_config, check_launch, ValidationError};
pub use warp::{SimtStack, WarpContext};
