//! Warp schedulers: GTO, LRR, Two-Level (TL), and Fetch-Group.
//!
//! Each SM has `num_schedulers` scheduler instances; warp slot `s` belongs
//! to scheduler `s % num_schedulers` (the usual striped assignment). Every
//! cycle the SM asks each scheduler for a priority-ordered candidate list
//! and issues to the first ready warps.

use std::collections::VecDeque;
use std::fmt;

use crate::config::SchedulerPolicy;

/// Read-only per-warp information a scheduler may consult.
#[derive(Debug, Clone, Copy)]
pub struct WarpView {
    /// Hardware warp slot.
    pub slot: usize,
    /// Cycle the warp became resident (age).
    pub dispatch_cycle: u64,
    /// The warp exists and has not finished.
    pub resident: bool,
    /// The warp is blocked on a long-latency dependence (memory load
    /// outstanding) — the demotion trigger for the two-level scheduler.
    pub long_latency_pending: bool,
    /// The warp is waiting at a CTA barrier — also a two-level demotion
    /// trigger (a barrier-blocked warp must not pin an active-pool slot,
    /// or the warps that could release it never get promoted).
    pub barrier_waiting: bool,
}

/// Events a scheduler can emit for the SM to act on (e.g. the RFC must
/// flush entries of warps demoted from the active pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// A warp was demoted from the active pool.
    Deactivated {
        /// The demoted warp's slot.
        slot: usize,
    },
}

/// A warp scheduler for one scheduler lane of an SM.
///
/// `Send` is a supertrait so whole simulations (SMs own their schedulers)
/// can move to worker threads of the parallel experiment engine.
pub trait WarpScheduler: fmt::Debug + Send {
    /// Returns the candidate warp slots in priority order for this cycle.
    /// The SM tries them in order and issues to the ready ones.
    fn prioritize(&mut self, warps: &[WarpView], cycle: u64, out: &mut Vec<usize>);

    /// Notifies the scheduler that `slot` issued an instruction.
    fn on_issue(&mut self, slot: usize, cycle: u64);

    /// Notifies the scheduler that a warp became resident.
    fn on_warp_start(&mut self, slot: usize);

    /// Notifies the scheduler that a warp finished.
    fn on_warp_finish(&mut self, slot: usize);

    /// Drains pending events (pool demotions).
    fn drain_events(&mut self, out: &mut Vec<SchedulerEvent>) {
        let _ = out;
    }

    /// True when calling [`WarpScheduler::prioritize`] on a cycle where no
    /// warp issues leaves the scheduler's observable state unchanged. The
    /// skip-ahead fast-forward relies on this to elide idle cycles: GTO and
    /// LRR mutate state only in `on_issue`, while the two-level scheduler
    /// demotes/promotes and the fetch-group scheduler rotates inside
    /// `prioritize` itself, so those two veto skipping.
    fn idle_prioritize_is_noop(&self) -> bool {
        false
    }

    /// Policy name.
    fn name(&self) -> &'static str;
}

/// Builds the scheduler instance for one scheduler lane.
pub fn build_scheduler(policy: SchedulerPolicy) -> Box<dyn WarpScheduler> {
    match policy {
        SchedulerPolicy::Gto => Box::new(GtoScheduler::new()),
        SchedulerPolicy::Lrr => Box::new(LrrScheduler::new()),
        SchedulerPolicy::TwoLevel {
            active_per_scheduler,
        } => Box::new(TwoLevelScheduler::new(active_per_scheduler)),
        SchedulerPolicy::FetchGroup { group_size } => {
            Box::new(FetchGroupScheduler::new(group_size))
        }
    }
}

// ---------------------------------------------------------------------
// GTO
// ---------------------------------------------------------------------

/// Greedy-then-oldest: keep issuing from the last-issued warp; when it
/// cannot issue, fall back to the oldest (earliest-dispatched) warp.
#[derive(Debug, Default)]
pub struct GtoScheduler {
    greedy: Option<usize>,
    /// Scratch reused across cycles for age sorting.
    rest: Vec<(u64, usize)>,
}

impl GtoScheduler {
    /// New GTO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for GtoScheduler {
    fn prioritize(&mut self, warps: &[WarpView], _cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        if let Some(g) = self.greedy {
            if warps.iter().any(|w| w.slot == g && w.resident) {
                out.push(g);
            }
        }
        self.rest.clear();
        self.rest.extend(
            warps
                .iter()
                .filter(|w| w.resident && Some(w.slot) != self.greedy)
                .map(|w| (w.dispatch_cycle, w.slot)),
        );
        self.rest.sort_unstable();
        out.extend(self.rest.iter().map(|&(_, slot)| slot));
    }

    fn on_issue(&mut self, slot: usize, _cycle: u64) {
        self.greedy = Some(slot);
    }

    fn on_warp_start(&mut self, _slot: usize) {}

    fn on_warp_finish(&mut self, slot: usize) {
        if self.greedy == Some(slot) {
            self.greedy = None;
        }
    }

    fn idle_prioritize_is_noop(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "GTO"
    }
}

// ---------------------------------------------------------------------
// LRR
// ---------------------------------------------------------------------

/// Loose round-robin: rotate priority one past the last issued warp.
#[derive(Debug, Default)]
pub struct LrrScheduler {
    last: Option<usize>,
    /// Scratch reused across cycles.
    slots: Vec<usize>,
}

impl LrrScheduler {
    /// New LRR scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for LrrScheduler {
    fn prioritize(&mut self, warps: &[WarpView], _cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        self.slots.clear();
        self.slots
            .extend(warps.iter().filter(|w| w.resident).map(|w| w.slot));
        self.slots.sort_unstable();
        if self.slots.is_empty() {
            return;
        }
        let start = match self.last {
            Some(l) => self.slots.iter().position(|&s| s > l).unwrap_or(0),
            None => 0,
        };
        out.extend(self.slots[start..].iter().chain(self.slots[..start].iter()));
    }

    fn on_issue(&mut self, slot: usize, _cycle: u64) {
        self.last = Some(slot);
    }

    fn on_warp_start(&mut self, _slot: usize) {}

    fn on_warp_finish(&mut self, _slot: usize) {}

    fn idle_prioritize_is_noop(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "LRR"
    }
}

// ---------------------------------------------------------------------
// Two-level
// ---------------------------------------------------------------------

/// Two-level scheduler (Gebhart et al., ISCA 2011).
///
/// A bounded *active pool* of warps competes for issue (round-robin); all
/// other resident warps wait in a pending queue. When an active warp is
/// blocked on a long-latency operation it is demoted and the head of the
/// pending queue promoted. Demotion events are exported so the RFC model
/// can flush the demoted warp's cache entries — the key interaction that
/// makes a small RFC viable in the original paper.
#[derive(Debug)]
pub struct TwoLevelScheduler {
    active_size: usize,
    active: Vec<usize>,
    pending: VecDeque<usize>,
    rr: usize,
    events: Vec<SchedulerEvent>,
}

impl TwoLevelScheduler {
    /// New two-level scheduler with the given active-pool capacity.
    pub fn new(active_size: usize) -> Self {
        TwoLevelScheduler {
            active_size: active_size.max(1),
            active: Vec::new(),
            pending: VecDeque::new(),
            rr: 0,
            events: Vec::new(),
        }
    }

    /// Current active pool (for tests/inspection).
    pub fn active_pool(&self) -> &[usize] {
        &self.active
    }

    fn promote(&mut self) {
        while self.active.len() < self.active_size {
            match self.pending.pop_front() {
                Some(s) => self.active.push(s),
                None => break,
            }
        }
    }
}

impl WarpScheduler for TwoLevelScheduler {
    fn prioritize(&mut self, warps: &[WarpView], _cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        // Demote blocked active warps.
        let mut i = 0;
        while i < self.active.len() {
            let slot = self.active[i];
            let view = warps.iter().find(|w| w.slot == slot);
            let demote =
                view.is_none_or(|w| !w.resident || w.long_latency_pending || w.barrier_waiting);
            if demote {
                self.active.remove(i);
                if let Some(w) = view {
                    if w.resident {
                        self.pending.push_back(slot);
                        self.events.push(SchedulerEvent::Deactivated { slot });
                    }
                }
            } else {
                i += 1;
            }
        }
        self.promote();
        if self.active.is_empty() {
            return;
        }
        // Round-robin within the active pool.
        let n = self.active.len();
        let start = self.rr % n;
        out.extend(
            self.active[start..]
                .iter()
                .chain(self.active[..start].iter()),
        );
    }

    fn on_issue(&mut self, slot: usize, _cycle: u64) {
        if let Some(pos) = self.active.iter().position(|&s| s == slot) {
            self.rr = (pos + 1) % self.active.len().max(1);
        }
    }

    fn on_warp_start(&mut self, slot: usize) {
        if self.active.len() < self.active_size {
            self.active.push(slot);
        } else {
            self.pending.push_back(slot);
        }
    }

    fn on_warp_finish(&mut self, slot: usize) {
        self.active.retain(|&s| s != slot);
        self.pending.retain(|&s| s != slot);
        self.promote();
    }

    fn drain_events(&mut self, out: &mut Vec<SchedulerEvent>) {
        out.append(&mut self.events);
    }

    fn name(&self) -> &'static str {
        "TL"
    }
}

// ---------------------------------------------------------------------
// Fetch-group
// ---------------------------------------------------------------------

/// Fetch-group scheduling (Narasiman et al., MICRO 2011): warps are grouped
/// by slot; the current group has priority until all of its warps are
/// blocked, then priority rotates to the next group.
#[derive(Debug)]
pub struct FetchGroupScheduler {
    group_size: usize,
    current_group: usize,
    /// Scratch reused across cycles: (slot, long_latency_pending).
    slots: Vec<(usize, bool)>,
}

impl FetchGroupScheduler {
    /// New fetch-group scheduler with the given warps-per-group.
    pub fn new(group_size: usize) -> Self {
        FetchGroupScheduler {
            group_size: group_size.max(1),
            current_group: 0,
            slots: Vec::new(),
        }
    }
}

impl WarpScheduler for FetchGroupScheduler {
    fn prioritize(&mut self, warps: &[WarpView], _cycle: u64, out: &mut Vec<usize>) {
        out.clear();
        self.slots.clear();
        self.slots.extend(
            warps
                .iter()
                .filter(|w| w.resident)
                .map(|w| (w.slot, w.long_latency_pending)),
        );
        if self.slots.is_empty() {
            return;
        }
        self.slots.sort_unstable();
        let num_groups = self.slots.len().div_ceil(self.group_size);
        let cur = self.current_group % num_groups;
        // If every warp of the current group is long-latency blocked, rotate.
        let cur_blocked = self
            .slots
            .iter()
            .skip(cur * self.group_size)
            .take(self.group_size)
            .all(|&(_, long)| long);
        if cur_blocked {
            self.current_group = (cur + 1) % num_groups;
        }
        let cur = self.current_group % num_groups;
        for g in 0..num_groups {
            out.extend(
                self.slots
                    .iter()
                    .skip(((cur + g) % num_groups) * self.group_size)
                    .take(self.group_size)
                    .map(|&(slot, _)| slot),
            );
        }
    }

    fn on_issue(&mut self, _slot: usize, _cycle: u64) {}

    fn on_warp_start(&mut self, _slot: usize) {}

    fn on_warp_finish(&mut self, _slot: usize) {}

    fn name(&self) -> &'static str {
        "FG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(slots: &[(usize, u64, bool)]) -> Vec<WarpView> {
        slots
            .iter()
            .map(|&(slot, age, mem)| WarpView {
                slot,
                dispatch_cycle: age,
                resident: true,
                long_latency_pending: mem,
                barrier_waiting: false,
            })
            .collect()
    }

    #[test]
    fn gto_prefers_greedy_then_oldest() {
        let mut s = GtoScheduler::new();
        let w = views(&[(0, 30, false), (4, 10, false), (8, 20, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        // No greedy yet: oldest first.
        assert_eq!(out, vec![4, 8, 0]);
        s.on_issue(8, 1);
        s.prioritize(&w, 2, &mut out);
        assert_eq!(out, vec![8, 4, 0]);
        s.on_warp_finish(8);
        s.prioritize(&w, 3, &mut out);
        assert_eq!(out[0], 4);
    }

    #[test]
    fn lrr_rotates_past_last_issued() {
        let mut s = LrrScheduler::new();
        let w = views(&[(0, 0, false), (4, 0, false), (8, 0, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert_eq!(out, vec![0, 4, 8]);
        s.on_issue(0, 0);
        s.prioritize(&w, 1, &mut out);
        assert_eq!(out, vec![4, 8, 0]);
        s.on_issue(8, 1);
        s.prioritize(&w, 2, &mut out);
        assert_eq!(out, vec![0, 4, 8]);
    }

    #[test]
    fn two_level_caps_active_pool() {
        let mut s = TwoLevelScheduler::new(2);
        for slot in [0, 4, 8, 12] {
            s.on_warp_start(slot);
        }
        assert_eq!(s.active_pool(), &[0, 4]);
        let w = views(&[(0, 0, false), (4, 0, false), (8, 0, false), (12, 0, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&0) && out.contains(&4));
    }

    #[test]
    fn two_level_demotes_blocked_warps_and_emits_event() {
        let mut s = TwoLevelScheduler::new(2);
        for slot in [0, 4, 8] {
            s.on_warp_start(slot);
        }
        // Warp 0 blocks on memory.
        let w = views(&[(0, 0, true), (4, 0, false), (8, 0, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert!(!out.contains(&0), "blocked warp must leave the pool");
        assert!(out.contains(&8), "pending warp must be promoted");
        let mut ev = Vec::new();
        s.drain_events(&mut ev);
        assert_eq!(ev, vec![SchedulerEvent::Deactivated { slot: 0 }]);
        // Events drain once.
        let mut ev2 = Vec::new();
        s.drain_events(&mut ev2);
        assert!(ev2.is_empty());
    }

    #[test]
    fn two_level_demotes_barrier_blocked_warps() {
        let mut s = TwoLevelScheduler::new(1);
        s.on_warp_start(0);
        s.on_warp_start(4);
        let w = vec![
            WarpView {
                slot: 0,
                dispatch_cycle: 0,
                resident: true,
                long_latency_pending: false,
                barrier_waiting: true,
            },
            WarpView {
                slot: 4,
                dispatch_cycle: 0,
                resident: true,
                long_latency_pending: false,
                barrier_waiting: false,
            },
        ];
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert_eq!(
            out,
            vec![4],
            "warp 4 must be promoted so it can reach the barrier"
        );
    }

    #[test]
    fn two_level_finish_promotes_pending() {
        let mut s = TwoLevelScheduler::new(1);
        s.on_warp_start(0);
        s.on_warp_start(4);
        assert_eq!(s.active_pool(), &[0]);
        s.on_warp_finish(0);
        assert_eq!(s.active_pool(), &[4]);
    }

    #[test]
    fn fetch_group_prioritizes_current_group() {
        let mut s = FetchGroupScheduler::new(2);
        let w = views(&[(0, 0, false), (4, 0, false), (8, 0, false), (12, 0, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert_eq!(out, vec![0, 4, 8, 12]);
    }

    #[test]
    fn fetch_group_rotates_when_group_blocked() {
        let mut s = FetchGroupScheduler::new(2);
        let w = views(&[(0, 0, true), (4, 0, true), (8, 0, false), (12, 0, false)]);
        let mut out = Vec::new();
        s.prioritize(&w, 0, &mut out);
        assert_eq!(out, vec![8, 12, 0, 4]);
    }

    #[test]
    fn build_scheduler_dispatches_policy() {
        assert_eq!(build_scheduler(SchedulerPolicy::Gto).name(), "GTO");
        assert_eq!(build_scheduler(SchedulerPolicy::Lrr).name(), "LRR");
        assert_eq!(
            build_scheduler(SchedulerPolicy::TwoLevel {
                active_per_scheduler: 6
            })
            .name(),
            "TL"
        );
        assert_eq!(
            build_scheduler(SchedulerPolicy::FetchGroup { group_size: 8 }).name(),
            "FG"
        );
    }
}
