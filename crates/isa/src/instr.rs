//! Instruction representation: operands, destinations, predication.

use std::fmt;

use crate::op::Opcode;
use crate::reg::{PredReg, Reg, SpecialReg};

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register read — this is what counts as a
    /// register-file *access* for profiling purposes.
    Reg(Reg),
    /// A 32-bit immediate constant (no RF access).
    Imm(u32),
    /// A read-only special register (no RF access).
    Special(SpecialReg),
}

impl Operand {
    /// Returns the register if this operand reads the register file.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// An instruction destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dst {
    /// No destination (stores, branches, barriers…).
    #[default]
    None,
    /// Write a general-purpose register — a register-file *access*.
    Reg(Reg),
    /// Write a predicate register (outside the RF).
    Pred(PredReg),
}

impl Dst {
    /// Returns the general-purpose register written, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Dst::Reg(r) => Some(r),
            _ => None,
        }
    }
}

/// A predicate guard: the instruction executes in a lane only when `pred`
/// holds the value `expected` (i.e. `@P0` or `@!P0` in PTX syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredGuard {
    /// Guarding predicate register.
    pub pred: PredReg,
    /// `true` for `@P`, `false` for `@!P`.
    pub expected: bool,
}

impl fmt::Display for PredGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.expected {
            write!(f, "@{}", self.pred)
        } else {
            write!(f, "@!{}", self.pred)
        }
    }
}

/// A single machine instruction.
///
/// Instructions are stored in a flat `Vec` inside a [`crate::Kernel`]; the
/// program counter is simply an index into that vector. Branch targets are
/// resolved indices (labels exist only in [`crate::KernelBuilder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Destination, if any.
    pub dst: Dst,
    /// Up to three source operands (unused slots are `None`).
    pub srcs: [Option<Operand>; 3],
    /// Optional guard; the instruction is squashed in lanes where the guard
    /// fails.
    pub guard: Option<PredGuard>,
    /// Branch target (instruction index), for `Bra`.
    pub target: Option<usize>,
    /// Address-offset immediate for memory ops (byte offset).
    pub mem_offset: u32,
}

impl Instruction {
    /// Creates an instruction with the given opcode and no operands.
    pub fn new(opcode: Opcode) -> Self {
        Instruction {
            opcode,
            dst: Dst::None,
            srcs: [None, None, None],
            guard: None,
            target: None,
            mem_offset: 0,
        }
    }

    /// Sets the destination register (builder style).
    pub fn with_dst(mut self, dst: Dst) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the source operands (builder style).
    pub fn with_srcs(mut self, srcs: &[Operand]) -> Self {
        assert!(srcs.len() <= 3, "at most 3 source operands");
        for (slot, s) in self.srcs.iter_mut().zip(srcs.iter()) {
            *slot = Some(*s);
        }
        self
    }

    /// Sets the predicate guard (builder style).
    pub fn with_guard(mut self, guard: PredGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Sets the branch target (builder style).
    pub fn with_target(mut self, target: usize) -> Self {
        self.target = Some(target);
        self
    }

    /// Iterates over the general-purpose registers *read* by this
    /// instruction (the RF read accesses).
    pub fn reg_reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().filter_map(|op| op.as_reg())
    }

    /// Returns the general-purpose register *written*, if any (the RF write
    /// access).
    pub fn reg_write(&self) -> Option<Reg> {
        self.dst.as_reg()
    }

    /// Total number of RF accesses (reads + writes) this instruction makes
    /// per executing thread. This matches the paper's definition: "An access
    /// is defined as either a read or write operation" (§II).
    pub fn rf_access_count(&self) -> usize {
        self.reg_reads().count() + usize::from(self.reg_write().is_some())
    }

    /// Number of distinct source-operand RF reads, as seen by the operand
    /// collector (duplicate registers still require one collector slot each).
    pub fn num_reg_src_operands(&self) -> usize {
        self.reg_reads().count()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.opcode)?;
        // Memory ops render their address in assembler syntax (`[Rn]` /
        // `[Rn + off]`) so that `Display` output — including the byte
        // offset, which the generic rendering below would lose — parses
        // back through `asm::parse_kernel`. Malformed hand-built
        // instructions fall through to the generic form.
        if let (Opcode::Ldg | Opcode::Lds, Dst::Reg(d), Some(Operand::Reg(a))) =
            (self.opcode, self.dst, self.srcs[0])
        {
            write!(f, " {d}, [{a}")?;
            if self.mem_offset != 0 {
                write!(f, " + {}", self.mem_offset)?;
            }
            return write!(f, "]");
        }
        if let (Opcode::Stg | Opcode::Sts, Some(Operand::Reg(a)), Some(v)) =
            (self.opcode, self.srcs[0], self.srcs[1])
        {
            write!(f, " [{a}")?;
            if self.mem_offset != 0 {
                write!(f, " + {}", self.mem_offset)?;
            }
            return write!(f, "], {v}");
        }
        match self.dst {
            Dst::None => {}
            Dst::Reg(r) => write!(f, " {r}")?,
            Dst::Pred(p) => write!(f, " {p}")?,
        }
        for s in self.srcs.iter().flatten() {
            write!(f, ", {s}")?;
        }
        if let Some(t) = self.target {
            write!(f, " -> #{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpOp;

    fn iadd(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::new(Opcode::IAdd)
            .with_dst(Dst::Reg(Reg(dst)))
            .with_srcs(&[Operand::Reg(Reg(a)), Operand::Reg(Reg(b))])
    }

    #[test]
    fn reg_reads_skips_imm_and_special() {
        let i = Instruction::new(Opcode::IAdd)
            .with_dst(Dst::Reg(Reg(2)))
            .with_srcs(&[Operand::Reg(Reg(1)), Operand::Imm(7)]);
        let reads: Vec<_> = i.reg_reads().collect();
        assert_eq!(reads, vec![Reg(1)]);
        assert_eq!(i.rf_access_count(), 2);
    }

    #[test]
    fn rf_access_count_counts_duplicates() {
        // R1 + R1 -> R1 is 3 accesses (2 reads + 1 write), like the paper's
        // occurrence counting.
        let i = iadd(1, 1, 1);
        assert_eq!(i.rf_access_count(), 3);
        assert_eq!(i.num_reg_src_operands(), 2);
    }

    #[test]
    fn store_has_no_write() {
        let st =
            Instruction::new(Opcode::Stg).with_srcs(&[Operand::Reg(Reg(0)), Operand::Reg(Reg(1))]);
        assert_eq!(st.reg_write(), None);
        assert_eq!(st.rf_access_count(), 2);
    }

    #[test]
    fn pred_dst_is_not_rf_write() {
        let setp = Instruction::new(Opcode::Setp(CmpOp::Lt))
            .with_dst(Dst::Pred(PredReg(0)))
            .with_srcs(&[Operand::Reg(Reg(3)), Operand::Imm(10)]);
        assert_eq!(setp.reg_write(), None);
        assert_eq!(setp.rf_access_count(), 1);
    }

    #[test]
    fn display_renders_guard_and_target() {
        let bra = Instruction::new(Opcode::Bra)
            .with_guard(PredGuard {
                pred: PredReg(0),
                expected: false,
            })
            .with_target(5);
        let s = bra.to_string();
        assert!(s.contains("@!P0"), "{s}");
        assert!(s.contains("-> #5"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn too_many_srcs_panics() {
        let _ = Instruction::new(Opcode::IAdd).with_srcs(&[
            Operand::Imm(0),
            Operand::Imm(1),
            Operand::Imm(2),
            Operand::Imm(3),
        ]);
    }
}
