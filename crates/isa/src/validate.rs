//! Semantic kernel validation beyond what [`KernelBuilder::build`](crate::KernelBuilder::build) checks.
//!
//! [`KernelBuilder::build`](crate::KernelBuilder::build) enforces the
//! *structural* rules every kernel must satisfy (labels bound, register and
//! predicate indices architecturally valid, an `EXIT` present, explicit
//! branch targets in range). It deliberately does **not** enforce the
//! per-opcode operand shapes the executor relies on — `KernelBuilder::push`
//! is an escape hatch, and [`decode_kernel`](crate::decode_kernel) rebuilds
//! kernels instruction-by-instruction from untrusted bytes — so a kernel
//! that *builds* can still drive the simulator into a panic (a `SHFL` with
//! an immediate source, a `SELP` without its predicate guard, control flow
//! that walks the program counter off the end of the kernel).
//!
//! [`KernelValidator`] closes that gap. It is the admission check run by
//! `Gpu::run` before any simulation state is built: every rule corresponds
//! to a concrete executor expectation, and every violation carries the
//! offending instruction index so hostile or corrupted kernels are rejected
//! with provenance instead of a panic deep inside the cycle loop.

use std::fmt;

use crate::instr::{Dst, Instruction, Operand};
use crate::kernel::Kernel;
use crate::op::Opcode;
use crate::reg::{PredReg, Reg, MAX_ARCH_REGS, NUM_PRED_REGS};

/// Default cap on kernel length accepted by [`KernelValidator`]. Far above
/// any real workload (the suite's largest kernels are a few hundred
/// instructions) while keeping per-launch validation and reconvergence
/// analysis cheap even for hostile inputs.
pub const DEFAULT_MAX_INSTRUCTIONS: usize = 1 << 20;

/// A semantic validation failure, with the index of the offending
/// instruction where one exists.
///
/// Every variant's `instr` field is the 0-based instruction index — the
/// same index printed by kernel disassembly and carried by trace events —
/// so a rejection can be traced straight back to the instruction that
/// caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The kernel has no instructions.
    Empty,
    /// The kernel is longer than the validator's instruction cap.
    TooLong {
        /// Actual instruction count.
        len: usize,
        /// The cap in force.
        limit: usize,
    },
    /// A general-purpose register index is outside the declared/allowed
    /// register budget.
    RegisterOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The register as written.
        reg: Reg,
        /// Exclusive upper bound in force.
        limit: usize,
    },
    /// A predicate register index is outside `P0..P3`.
    PredicateOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The predicate as written.
        pred: PredReg,
    },
    /// A `BRA` carries no target (possible via `KernelBuilder::push`;
    /// `build` only range-checks targets that are present).
    MissingBranchTarget {
        /// Offending instruction index.
        instr: usize,
    },
    /// A `BRA` target points past the end of the kernel.
    BranchTargetOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The out-of-range target.
        target: usize,
        /// Kernel length.
        len: usize,
    },
    /// A required source operand is absent (memory ops need their address,
    /// stores their value).
    MissingOperand {
        /// Offending instruction index.
        instr: usize,
        /// The opcode whose operand is missing.
        opcode: Opcode,
        /// Source slot (0-based) that must be populated.
        slot: usize,
    },
    /// An operand is present but of a kind the executor cannot accept for
    /// this opcode.
    OperandShape {
        /// Offending instruction index.
        instr: usize,
        /// The opcode with the ill-shaped operand.
        opcode: Opcode,
        /// What the executor requires.
        requirement: &'static str,
    },
    /// A `BAR` under a predicate guard: lanes that skip the barrier while
    /// sibling warps wait on it deadlock the CTA.
    GuardedBarrier {
        /// Offending instruction index.
        instr: usize,
    },
    /// Control flow can fall off the end of the kernel: the final
    /// instruction must be an unguarded `EXIT` or an unguarded `BRA`, or
    /// surviving lanes advance the pc past the last instruction.
    FallsOffEnd {
        /// Index of the (inadequate) final instruction.
        instr: usize,
    },
    /// A statically-resolvable shared-memory address is outside the
    /// configured shared-memory size.
    SharedAddressOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The fully static word address (`imm + mem_offset`).
        addr: u64,
        /// Shared-memory size in words.
        limit: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Empty => write!(f, "kernel has no instructions"),
            ValidationError::TooLong { len, limit } => {
                write!(f, "kernel has {len} instructions (limit {limit})")
            }
            ValidationError::RegisterOutOfRange { instr, reg, limit } => {
                write!(
                    f,
                    "instr {instr}: register {reg} outside the R0..R{} budget",
                    limit.saturating_sub(1)
                )
            }
            ValidationError::PredicateOutOfRange { instr, pred } => {
                write!(
                    f,
                    "instr {instr}: predicate {pred} outside P0..P{}",
                    NUM_PRED_REGS - 1
                )
            }
            ValidationError::MissingBranchTarget { instr } => {
                write!(f, "instr {instr}: branch has no target")
            }
            ValidationError::BranchTargetOutOfRange { instr, target, len } => {
                write!(
                    f,
                    "instr {instr}: branch target {target} outside kernel of {len} instructions"
                )
            }
            ValidationError::MissingOperand {
                instr,
                opcode,
                slot,
            } => {
                write!(f, "instr {instr}: {opcode} requires source operand {slot}")
            }
            ValidationError::OperandShape {
                instr,
                opcode,
                requirement,
            } => {
                write!(f, "instr {instr}: {opcode} {requirement}")
            }
            ValidationError::GuardedBarrier { instr } => {
                write!(f, "instr {instr}: bar.sync must not be predicated (guarded barriers can deadlock the CTA)")
            }
            ValidationError::FallsOffEnd { instr } => {
                write!(f, "instr {instr}: control flow can fall off the end of the kernel (last instruction must be an unguarded exit or branch)")
            }
            ValidationError::SharedAddressOutOfRange { instr, addr, limit } => {
                write!(f, "instr {instr}: shared-memory address {addr} outside the {limit}-word shared memory")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Semantic kernel admission check. See the [module docs](self).
///
/// The default validator enforces exactly the executor's preconditions; the
/// `with_*` builders tighten it to a concrete machine configuration
/// (register budget, shared-memory size, instruction cap) so the simulator
/// can reject launches that could never run rather than spinning until the
/// cycle limit.
///
/// # Example
///
/// ```rust
/// use prf_isa::{Instruction, KernelBuilder, KernelValidator, Opcode, Operand, Reg};
///
/// let mut kb = KernelBuilder::new("bad-shfl");
/// // `push` bypasses the typed helpers: an immediate SHFL source builds…
/// kb.push(Instruction::new(Opcode::Shfl).with_dst(prf_isa::Dst::Reg(Reg(0)))
///     .with_srcs(&[Operand::Imm(1), Operand::Imm(0)]));
/// kb.exit();
/// let kernel = kb.build().unwrap();
/// // …but does not validate, with the offending instruction named.
/// let err = KernelValidator::new().validate(&kernel).unwrap_err();
/// assert!(err.to_string().contains("instr 0"));
/// ```
#[derive(Debug, Clone)]
pub struct KernelValidator {
    max_registers: usize,
    max_instructions: usize,
    shared_mem_words: Option<u32>,
}

impl Default for KernelValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelValidator {
    /// A validator enforcing the architectural limits only.
    pub fn new() -> Self {
        KernelValidator {
            max_registers: MAX_ARCH_REGS,
            max_instructions: DEFAULT_MAX_INSTRUCTIONS,
            shared_mem_words: None,
        }
    }

    /// Tightens the per-thread register budget (clamped to
    /// [`MAX_ARCH_REGS`]).
    pub fn with_max_registers(mut self, max_registers: usize) -> Self {
        self.max_registers = max_registers.min(MAX_ARCH_REGS);
        self
    }

    /// Caps the accepted kernel length.
    pub fn with_max_instructions(mut self, max_instructions: usize) -> Self {
        self.max_instructions = max_instructions;
        self
    }

    /// Enables the static shared-memory bounds check against a machine
    /// with `words` words of shared memory per CTA.
    pub fn with_shared_mem_words(mut self, words: u32) -> Self {
        self.shared_mem_words = Some(words);
        self
    }

    /// Validates every instruction of `kernel`, returning the first
    /// violation with its instruction index.
    pub fn validate(&self, kernel: &Kernel) -> Result<(), ValidationError> {
        let len = kernel.len();
        if len == 0 {
            return Err(ValidationError::Empty);
        }
        if len > self.max_instructions {
            return Err(ValidationError::TooLong {
                len,
                limit: self.max_instructions,
            });
        }
        for (i, instr) in kernel.instructions().iter().enumerate() {
            self.check_instr(i, instr, len)?;
        }
        // Termination: the executor advances the pc past the last
        // instruction unless the final instruction unconditionally leaves
        // (unguarded EXIT retires all active lanes; unguarded BRA redirects
        // them). A *guarded* EXIT lets surviving lanes fall through.
        let last = &kernel.instructions()[len - 1];
        let terminates = last.guard.is_none() && matches!(last.opcode, Opcode::Exit | Opcode::Bra);
        if !terminates {
            return Err(ValidationError::FallsOffEnd { instr: len - 1 });
        }
        Ok(())
    }

    fn check_instr(
        &self,
        i: usize,
        instr: &Instruction,
        len: usize,
    ) -> Result<(), ValidationError> {
        // Register/predicate budgets (dst, sources, guard).
        match instr.dst {
            Dst::Reg(r) => self.check_reg(i, r)?,
            Dst::Pred(p) => check_pred(i, p)?,
            Dst::None => {}
        }
        for src in instr.srcs.iter().flatten() {
            if let Operand::Reg(r) = src {
                self.check_reg(i, *r)?;
            }
        }
        if let Some(g) = &instr.guard {
            check_pred(i, g.pred)?;
        }

        // Per-opcode shape rules — each one is a concrete executor
        // precondition (see `prf-sim::exec`).
        match instr.opcode {
            Opcode::Bra => {
                let target = instr
                    .target
                    .ok_or(ValidationError::MissingBranchTarget { instr: i })?;
                if target >= len {
                    return Err(ValidationError::BranchTargetOutOfRange {
                        instr: i,
                        target,
                        len,
                    });
                }
            }
            Opcode::Shfl => match instr.srcs[0] {
                Some(Operand::Reg(_)) => {}
                Some(_) => {
                    return Err(ValidationError::OperandShape {
                        instr: i,
                        opcode: instr.opcode,
                        requirement: "requires a register as source 0",
                    })
                }
                None => {
                    return Err(ValidationError::MissingOperand {
                        instr: i,
                        opcode: instr.opcode,
                        slot: 0,
                    })
                }
            },
            Opcode::Selp if instr.guard.is_none() => {
                return Err(ValidationError::OperandShape {
                    instr: i,
                    opcode: instr.opcode,
                    requirement: "requires its selection predicate as a guard",
                });
            }
            Opcode::Bar if instr.guard.is_some() => {
                return Err(ValidationError::GuardedBarrier { instr: i });
            }
            Opcode::Ldg | Opcode::Stg | Opcode::Lds | Opcode::Sts => {
                if instr.srcs[0].is_none() {
                    return Err(ValidationError::MissingOperand {
                        instr: i,
                        opcode: instr.opcode,
                        slot: 0,
                    });
                }
                if instr.opcode.is_store() && instr.srcs[1].is_none() {
                    return Err(ValidationError::MissingOperand {
                        instr: i,
                        opcode: instr.opcode,
                        slot: 1,
                    });
                }
                // Fully static shared addresses are bounds-checked when the
                // validator knows the machine's shared-memory size.
                if let (Some(limit), false) = (self.shared_mem_words, instr.opcode.is_global_mem())
                {
                    if let Some(Operand::Imm(base)) = instr.srcs[0] {
                        let addr = u64::from(base) + u64::from(instr.mem_offset);
                        if addr >= u64::from(limit) {
                            return Err(ValidationError::SharedAddressOutOfRange {
                                instr: i,
                                addr,
                                limit,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn check_reg(&self, i: usize, reg: Reg) -> Result<(), ValidationError> {
        if reg.index() >= self.max_registers {
            return Err(ValidationError::RegisterOutOfRange {
                instr: i,
                reg,
                limit: self.max_registers,
            });
        }
        Ok(())
    }
}

fn check_pred(i: usize, pred: PredReg) -> Result<(), ValidationError> {
    if !pred.is_valid() {
        return Err(ValidationError::PredicateOutOfRange { instr: i, pred });
    }
    Ok(())
}

/// Validates a kernel against the architectural limits (the default
/// [`KernelValidator`]).
pub fn validate_kernel(kernel: &Kernel) -> Result<(), ValidationError> {
    KernelValidator::new().validate(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::PredGuard;
    use crate::kernel::KernelBuilder;
    use crate::op::CmpOp;
    use crate::reg::SpecialReg;

    fn push_built(instrs: Vec<Instruction>) -> Kernel {
        let mut kb = KernelBuilder::new("t");
        for i in instrs {
            kb.push(i);
        }
        kb.exit();
        kb.build().unwrap()
    }

    #[test]
    fn builder_kernels_validate() {
        let mut kb = KernelBuilder::new("ok");
        kb.mov_special(Reg(0), SpecialReg::TidX);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16);
        kb.selp(Reg(1), Reg(0), Reg(0), PredReg(0));
        kb.shfl(Reg(2), Reg(1), Reg(0));
        kb.bar();
        kb.stg(Reg(0), Reg(2), 0);
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(validate_kernel(&k), Ok(()));
    }

    #[test]
    fn shfl_immediate_source_rejected_with_index() {
        let k = push_built(vec![Instruction::new(Opcode::Shfl)
            .with_dst(Dst::Reg(Reg(0)))
            .with_srcs(&[Operand::Imm(1), Operand::Imm(0)])]);
        let err = validate_kernel(&k).unwrap_err();
        assert_eq!(
            err,
            ValidationError::OperandShape {
                instr: 0,
                opcode: Opcode::Shfl,
                requirement: "requires a register as source 0",
            }
        );
        assert!(err.to_string().contains("instr 0"));
    }

    #[test]
    fn selp_without_guard_rejected() {
        let k = push_built(vec![Instruction::new(Opcode::Selp)
            .with_dst(Dst::Reg(Reg(0)))
            .with_srcs(&[Operand::Reg(Reg(0)), Operand::Reg(Reg(0))])]);
        assert!(matches!(
            validate_kernel(&k),
            Err(ValidationError::OperandShape { instr: 0, .. })
        ));
    }

    #[test]
    fn branch_without_target_rejected() {
        let k = push_built(vec![Instruction::new(Opcode::Bra)]);
        assert_eq!(
            validate_kernel(&k),
            Err(ValidationError::MissingBranchTarget { instr: 0 })
        );
    }

    #[test]
    fn guarded_barrier_rejected() {
        let k = push_built(vec![Instruction::new(Opcode::Bar).with_guard(PredGuard {
            pred: PredReg(0),
            expected: true,
        })]);
        assert_eq!(
            validate_kernel(&k),
            Err(ValidationError::GuardedBarrier { instr: 0 })
        );
    }

    #[test]
    fn store_without_value_rejected() {
        let k = push_built(vec![
            Instruction::new(Opcode::Stg).with_srcs(&[Operand::Reg(Reg(0))])
        ]);
        assert_eq!(
            validate_kernel(&k),
            Err(ValidationError::MissingOperand {
                instr: 0,
                opcode: Opcode::Stg,
                slot: 1,
            })
        );
    }

    #[test]
    fn load_without_address_rejected() {
        let k = push_built(vec![
            Instruction::new(Opcode::Ldg).with_dst(Dst::Reg(Reg(0)))
        ]);
        assert_eq!(
            validate_kernel(&k),
            Err(ValidationError::MissingOperand {
                instr: 0,
                opcode: Opcode::Ldg,
                slot: 0,
            })
        );
    }

    #[test]
    fn guarded_exit_at_end_falls_off() {
        // A guarded EXIT lets surviving lanes advance the pc past the end.
        let mut kb = KernelBuilder::new("fall");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.setp_imm(PredReg(0), CmpOp::Ge, Reg(0), 0);
        kb.guard(PredReg(0), true);
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(
            validate_kernel(&k),
            Err(ValidationError::FallsOffEnd { instr: 2 })
        );
    }

    #[test]
    fn unguarded_trailing_branch_terminates() {
        let mut kb = KernelBuilder::new("loopy");
        let top = kb.new_label();
        kb.place_label(top);
        kb.exit();
        kb.bra(top);
        let k = kb.build().unwrap();
        assert_eq!(validate_kernel(&k), Ok(()));
    }

    #[test]
    fn register_budget_tightening() {
        let mut kb = KernelBuilder::new("wide");
        kb.mov_imm(Reg(20), 1);
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(validate_kernel(&k), Ok(()));
        let err = KernelValidator::new()
            .with_max_registers(8)
            .validate(&k)
            .unwrap_err();
        assert_eq!(
            err,
            ValidationError::RegisterOutOfRange {
                instr: 0,
                reg: Reg(20),
                limit: 8,
            }
        );
    }

    #[test]
    fn static_shared_address_bounds_checked() {
        let k = push_built(vec![
            Instruction::new(Opcode::Sts).with_srcs(&[Operand::Imm(100), Operand::Reg(Reg(0))])
        ]);
        assert_eq!(validate_kernel(&k), Ok(()), "unlimited validator accepts");
        assert_eq!(
            KernelValidator::new()
                .with_shared_mem_words(64)
                .validate(&k),
            Err(ValidationError::SharedAddressOutOfRange {
                instr: 0,
                addr: 100,
                limit: 64,
            })
        );
        assert_eq!(
            KernelValidator::new()
                .with_shared_mem_words(128)
                .validate(&k),
            Ok(())
        );
    }

    #[test]
    fn instruction_cap_enforced() {
        let mut kb = KernelBuilder::new("long");
        for _ in 0..10 {
            kb.nop();
        }
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(
            KernelValidator::new().with_max_instructions(5).validate(&k),
            Err(ValidationError::TooLong { len: 11, limit: 5 })
        );
    }

    #[test]
    fn branch_target_out_of_range_rejected() {
        let mut kb = KernelBuilder::new("oob");
        kb.push(Instruction::new(Opcode::Bra).with_target(99));
        kb.exit();
        let k = kb.build().unwrap_err();
        // build() itself range-checks explicit targets…
        assert!(matches!(k, crate::KernelError::TargetOutOfRange { .. }));
        // …so exercise the validator through a kernel whose length shrinks
        // conceptually: construct directly via push with an in-range build
        // and check the validator agrees on the boundary.
        let mut kb = KernelBuilder::new("edge");
        kb.push(Instruction::new(Opcode::Bra).with_target(1));
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(validate_kernel(&k), Ok(()));
    }

    #[test]
    fn errors_display_their_provenance() {
        let cases = [
            ValidationError::MissingBranchTarget { instr: 7 },
            ValidationError::GuardedBarrier { instr: 3 },
            ValidationError::FallsOffEnd { instr: 12 },
            ValidationError::PredicateOutOfRange {
                instr: 5,
                pred: PredReg(9),
            },
        ];
        for (e, idx) in cases.iter().zip(["7", "3", "12", "5"]) {
            assert!(
                e.to_string().contains(&format!("instr {idx}")),
                "{e} lacks provenance"
            );
        }
    }
}
