//! # prf-isa — GPU instruction set and kernel model
//!
//! This crate defines the PTX-like instruction set, kernel representation,
//! grid/CTA/warp geometry, and static analyses used by the Pilot Register
//! File reproduction (HPCA 2017).
//!
//! The paper evaluates register-file microarchitecture on GPGPU-Sim, which
//! executes PTX. We reproduce the properties that matter for a register-file
//! study:
//!
//! * every instruction names architected registers ([`Reg`], at most
//!   [`MAX_ARCH_REGS`] = 63 per thread, as in the paper's §III-B),
//! * kernels have real control flow (loops, data-dependent branches) so that
//!   *static* register-occurrence counts can diverge from *dynamic* access
//!   counts — the effect that motivates pilot-warp profiling,
//! * branch divergence is handled with immediate-post-dominator (IPDOM)
//!   reconvergence, computed here by [`cfg::ReconvergenceTable`].
//!
//! # Example
//!
//! ```rust
//! use prf_isa::{KernelBuilder, Reg, SpecialReg};
//!
//! # fn main() -> Result<(), prf_isa::KernelError> {
//! let mut kb = KernelBuilder::new("axpy");
//! kb.mov_special(Reg(0), SpecialReg::TidX);
//! kb.mov_imm(Reg(1), 100);
//! kb.iadd(Reg(2), Reg(0), Reg(1));
//! kb.exit();
//! let kernel = kb.build()?;
//! assert_eq!(kernel.regs_per_thread(), 3);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod asm;
pub mod cfg;
pub mod encode;
pub mod grid;
pub mod instr;
pub mod kernel;
pub mod liveness;
pub mod op;
pub mod realloc;
pub mod reg;
pub mod validate;

pub use analysis::StaticRegisterProfile;
pub use asm::{parse_kernel, ParseError};
pub use cfg::ReconvergenceTable;
pub use encode::{decode_kernel, encode_kernel, CodecError};
pub use grid::{CtaId, Dim3, GridConfig, ThreadCoord, WARP_SIZE};
pub use instr::{Dst, Instruction, Operand, PredGuard};
pub use kernel::{Kernel, KernelBuilder, KernelError, Label};
pub use liveness::{LiveRange, Liveness, RegSet};
pub use op::{CmpOp, ExecClass, Opcode};
pub use realloc::{reallocate, Realloc};
pub use reg::{PredReg, Reg, SpecialReg, MAX_ARCH_REGS, NUM_PRED_REGS};
pub use validate::{validate_kernel, KernelValidator, ValidationError};
