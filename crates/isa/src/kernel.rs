//! Kernel representation and a label-based builder.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{Dst, Instruction, Operand, PredGuard};
use crate::op::{CmpOp, Opcode};
use crate::reg::{PredReg, Reg, SpecialReg, MAX_ARCH_REGS, NUM_PRED_REGS};

/// An opaque forward-referenceable branch label handed out by
/// [`KernelBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

impl Label {
    /// The builder-internal id, matching [`KernelError::UnboundLabel`]'s
    /// payload — lets the assembler map an unbound label back to the
    /// source line that referenced it.
    pub(crate) fn id(self) -> usize {
        self.0
    }
}

/// Errors produced when finalising a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A label was referenced by a branch but never placed with
    /// [`KernelBuilder::place_label`].
    UnboundLabel(usize),
    /// A register index ≥ [`MAX_ARCH_REGS`] was used.
    RegisterOutOfRange(Reg),
    /// A predicate index ≥ [`crate::NUM_PRED_REGS`] was used.
    PredicateOutOfRange(PredReg),
    /// The kernel has no instructions.
    Empty,
    /// The kernel has no reachable `Exit`.
    NoExit,
    /// A branch target is outside the instruction array.
    TargetOutOfRange {
        /// Index of the offending branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnboundLabel(id) => write!(f, "label {id} was never placed"),
            KernelError::RegisterOutOfRange(r) => {
                write!(f, "register {r} exceeds the {MAX_ARCH_REGS}-register limit")
            }
            KernelError::PredicateOutOfRange(p) => {
                write!(
                    f,
                    "predicate {p} exceeds the {NUM_PRED_REGS}-predicate limit"
                )
            }
            KernelError::Empty => write!(f, "kernel has no instructions"),
            KernelError::NoExit => write!(f, "kernel has no exit instruction"),
            KernelError::TargetOutOfRange { pc, target } => {
                write!(f, "branch at #{pc} targets out-of-range #{target}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// An immutable, validated GPU kernel: a flat instruction array plus
/// metadata.
///
/// Build one with [`KernelBuilder`]. Validation guarantees:
/// every branch target is in range, every register and predicate index is
/// legal, and at least one `Exit` exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instruction>,
    regs_per_thread: u8,
}

impl Kernel {
    /// The kernel's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated instruction array.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the kernel has no instructions (never true for a
    /// validated kernel).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of architected registers allocated per thread
    /// (= highest register index used + 1), the quantity reported in the
    /// paper's Table I second column.
    pub fn regs_per_thread(&self) -> u8 {
        self.regs_per_thread
    }

    /// Fetches the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn fetch(&self, pc: usize) -> &Instruction {
        &self.instrs[pc]
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {} (regs={})", self.name, self.regs_per_thread)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "  #{pc:<4} {i}")?;
        }
        Ok(())
    }
}

/// Incremental kernel builder with labels and ergonomic per-opcode helpers.
///
/// # Example
///
/// ```rust
/// use prf_isa::{KernelBuilder, Reg, PredReg, CmpOp};
///
/// # fn main() -> Result<(), prf_isa::KernelError> {
/// let mut kb = KernelBuilder::new("count_to_ten");
/// kb.mov_imm(Reg(0), 0);
/// let top = kb.new_label();
/// kb.place_label(top);
/// kb.iadd_imm(Reg(0), Reg(0), 1);
/// kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 10);
/// kb.bra_if(PredReg(0), true, top);
/// kb.exit();
/// let kernel = kb.build()?;
/// assert_eq!(kernel.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instruction>,
    labels: HashMap<usize, usize>,
    next_label: usize,
    pending_guard: Option<PredGuard>,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            next_label: 0,
            pending_guard: None,
        }
    }

    /// Current instruction count (= the pc the next instruction will get).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates a fresh label that may be branched to before it is placed.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the next instruction's pc.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place_label(&mut self, label: Label) {
        let prev = self.labels.insert(label.0, self.instrs.len());
        assert!(prev.is_none(), "label {:?} placed twice", label);
    }

    /// Applies a predicate guard to the *next* instruction pushed.
    pub fn guard(&mut self, pred: PredReg, expected: bool) -> &mut Self {
        self.pending_guard = Some(PredGuard { pred, expected });
        self
    }

    /// Pushes a raw instruction (escape hatch for anything the helpers do
    /// not cover). Encodes label targets as `usize::MAX - label_id`; prefer
    /// the helpers.
    pub fn push(&mut self, mut instr: Instruction) -> &mut Self {
        if let Some(g) = self.pending_guard.take() {
            instr.guard = Some(g);
        }
        self.instrs.push(instr);
        self
    }

    // ------------------------------------------------------------------
    // Moves
    // ------------------------------------------------------------------

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Mov)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[Operand::Imm(imm)]),
        )
    }

    /// `dst = f32 immediate` (stored as IEEE-754 bits).
    pub fn mov_f32(&mut self, dst: Reg, imm: f32) -> &mut Self {
        self.mov_imm(dst, imm.to_bits())
    }

    /// `dst = special register`.
    pub fn mov_special(&mut self, dst: Reg, s: SpecialReg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Mov)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[Operand::Special(s)]),
        )
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Mov)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[Operand::Reg(src)]),
        )
    }

    // ------------------------------------------------------------------
    // Integer arithmetic
    // ------------------------------------------------------------------

    fn bin(&mut self, op: Opcode, dst: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(
            Instruction::new(op)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a, b]),
        )
    }

    /// `dst = a + b`.
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IAdd, dst, a.into(), b.into())
    }

    /// `dst = a + imm`.
    pub fn iadd_imm(&mut self, dst: Reg, a: Reg, imm: u32) -> &mut Self {
        self.bin(Opcode::IAdd, dst, a.into(), Operand::Imm(imm))
    }

    /// `dst = a - b`.
    pub fn isub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::ISub, dst, a.into(), b.into())
    }

    /// `dst = a * b` (low 32 bits).
    pub fn imul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IMul, dst, a.into(), b.into())
    }

    /// `dst = a * imm`.
    pub fn imul_imm(&mut self, dst: Reg, a: Reg, imm: u32) -> &mut Self {
        self.bin(Opcode::IMul, dst, a.into(), Operand::Imm(imm))
    }

    /// `dst = a * b + c`.
    pub fn imad(&mut self, dst: Reg, a: Reg, b: Reg, c: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::IMad)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into(), b.into(), c.into()]),
        )
    }

    /// `dst = min(a, b)` (signed).
    pub fn imin(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IMin, dst, a.into(), b.into())
    }

    /// `dst = max(a, b)` (signed).
    pub fn imax(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IMax, dst, a.into(), b.into())
    }

    /// `dst = a & b`.
    pub fn iand(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IAnd, dst, a.into(), b.into())
    }

    /// `dst = a & imm`.
    pub fn iand_imm(&mut self, dst: Reg, a: Reg, imm: u32) -> &mut Self {
        self.bin(Opcode::IAnd, dst, a.into(), Operand::Imm(imm))
    }

    /// `dst = a ^ b`.
    pub fn ixor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::IXor, dst, a.into(), b.into())
    }

    /// `dst = a << imm`.
    pub fn ishl_imm(&mut self, dst: Reg, a: Reg, imm: u32) -> &mut Self {
        self.bin(Opcode::IShl, dst, a.into(), Operand::Imm(imm))
    }

    /// `dst = a >> imm` (logical).
    pub fn ishr_imm(&mut self, dst: Reg, a: Reg, imm: u32) -> &mut Self {
        self.bin(Opcode::IShr, dst, a.into(), Operand::Imm(imm))
    }

    // ------------------------------------------------------------------
    // Floating point
    // ------------------------------------------------------------------

    /// `dst = a + b` (f32).
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::FAdd, dst, a.into(), b.into())
    }

    /// `dst = a * b` (f32).
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.bin(Opcode::FMul, dst, a.into(), b.into())
    }

    /// `dst = a * b + c` (fused, f32).
    pub fn ffma(&mut self, dst: Reg, a: Reg, b: Reg, c: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::FFma)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into(), b.into(), c.into()]),
        )
    }

    /// `dst = 1 / a` (SFU).
    pub fn frcp(&mut self, dst: Reg, a: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::FRcp)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into()]),
        )
    }

    /// `dst = sqrt(a)` (SFU).
    pub fn fsqrt(&mut self, dst: Reg, a: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::FSqrt)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into()]),
        )
    }

    /// `dst = log2(a)` (SFU).
    pub fn flog2(&mut self, dst: Reg, a: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::FLog2)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into()]),
        )
    }

    /// `dst = exp2(a)` (SFU).
    pub fn fexp2(&mut self, dst: Reg, a: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::FExp2)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into()]),
        )
    }

    // ------------------------------------------------------------------
    // Predicates, select, shuffle
    // ------------------------------------------------------------------

    /// `p = a <op> b`.
    pub fn setp(&mut self, p: PredReg, op: CmpOp, a: Reg, b: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Setp(op))
                .with_dst(Dst::Pred(p))
                .with_srcs(&[a.into(), b.into()]),
        )
    }

    /// `p = a <op> imm`.
    pub fn setp_imm(&mut self, p: PredReg, op: CmpOp, a: Reg, imm: u32) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Setp(op))
                .with_dst(Dst::Pred(p))
                .with_srcs(&[a.into(), Operand::Imm(imm)]),
        )
    }

    /// `dst = p ? a : b`. The guard slot carries the selecting predicate.
    pub fn selp(&mut self, dst: Reg, a: Reg, b: Reg, p: PredReg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Selp)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[a.into(), b.into()])
                .with_guard(PredGuard {
                    pred: p,
                    expected: true,
                }),
        )
    }

    /// Warp shuffle: `dst = value of src in lane (lane_src & 31)`.
    pub fn shfl(&mut self, dst: Reg, src: Reg, lane_src: Reg) -> &mut Self {
        self.push(
            Instruction::new(Opcode::Shfl)
                .with_dst(Dst::Reg(dst))
                .with_srcs(&[src.into(), lane_src.into()]),
        )
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// `dst = global[addr + offset]`.
    pub fn ldg(&mut self, dst: Reg, addr: Reg, offset: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Ldg)
            .with_dst(Dst::Reg(dst))
            .with_srcs(&[addr.into()]);
        i.mem_offset = offset;
        self.push(i)
    }

    /// `global[addr + offset] = val`.
    pub fn stg(&mut self, addr: Reg, val: Reg, offset: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Stg).with_srcs(&[addr.into(), val.into()]);
        i.mem_offset = offset;
        self.push(i)
    }

    /// `dst = shared[addr + offset]`.
    pub fn lds(&mut self, dst: Reg, addr: Reg, offset: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Lds)
            .with_dst(Dst::Reg(dst))
            .with_srcs(&[addr.into()]);
        i.mem_offset = offset;
        self.push(i)
    }

    /// `shared[addr + offset] = val`.
    pub fn sts(&mut self, addr: Reg, val: Reg, offset: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Sts).with_srcs(&[addr.into(), val.into()]);
        i.mem_offset = offset;
        self.push(i)
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) -> &mut Self {
        // Targets are temporarily encoded as usize::MAX - label id and fixed
        // up in build(); a real pc can never reach that range because the
        // instruction vector itself could not be that large.
        self.push(Instruction::new(Opcode::Bra).with_target(usize::MAX - label.0))
    }

    /// Branch to `label` when `pred == expected` (per-lane; may diverge).
    pub fn bra_if(&mut self, pred: PredReg, expected: bool, label: Label) -> &mut Self {
        self.guard(pred, expected);
        self.bra(label)
    }

    /// CTA-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Bar))
    }

    /// Terminate the thread.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Exit))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Nop))
    }

    // ------------------------------------------------------------------
    // Finalisation
    // ------------------------------------------------------------------

    /// Validates and freezes the kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if a label was never placed, a register or
    /// predicate index is out of range, the kernel is empty, has no `Exit`,
    /// or a branch targets a pc outside the instruction array.
    pub fn build(mut self) -> Result<Kernel, KernelError> {
        if self.instrs.is_empty() {
            return Err(KernelError::Empty);
        }
        // Resolve labels.
        for pc in 0..self.instrs.len() {
            if let Some(t) = self.instrs[pc].target {
                if t > usize::MAX / 2 {
                    let label_id = usize::MAX - t;
                    let resolved = *self
                        .labels
                        .get(&label_id)
                        .ok_or(KernelError::UnboundLabel(label_id))?;
                    self.instrs[pc].target = Some(resolved);
                }
                let t = self.instrs[pc].target.unwrap();
                if t >= self.instrs.len() {
                    return Err(KernelError::TargetOutOfRange { pc, target: t });
                }
            }
        }
        // Validate registers and find the high-water mark.
        let mut max_reg: i32 = -1;
        let mut has_exit = false;
        for i in &self.instrs {
            if matches!(i.opcode, Opcode::Exit) {
                has_exit = true;
            }
            for r in i.reg_reads().chain(i.reg_write()) {
                if !r.is_valid() {
                    return Err(KernelError::RegisterOutOfRange(r));
                }
                max_reg = max_reg.max(r.0 as i32);
            }
            if let Dst::Pred(p) = i.dst {
                if !p.is_valid() {
                    return Err(KernelError::PredicateOutOfRange(p));
                }
            }
            if let Some(g) = &i.guard {
                if !g.pred.is_valid() {
                    return Err(KernelError::PredicateOutOfRange(g.pred));
                }
            }
        }
        if !has_exit {
            return Err(KernelError::NoExit);
        }
        Ok(Kernel {
            name: self.name,
            instrs: self.instrs,
            regs_per_thread: (max_reg + 1) as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_kernel() {
        let mut kb = KernelBuilder::new("k");
        kb.mov_imm(Reg(0), 1);
        kb.iadd_imm(Reg(1), Reg(0), 2);
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.len(), 3);
        assert_eq!(k.regs_per_thread(), 2);
        assert!(!k.is_empty());
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut kb = KernelBuilder::new("loop");
        kb.mov_imm(Reg(0), 0);
        let top = kb.new_label();
        let done = kb.new_label();
        kb.place_label(top); // pc 1
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.setp_imm(PredReg(0), CmpOp::Ge, Reg(0), 10);
        kb.bra_if(PredReg(0), true, done); // pc 3 -> 6
        kb.bra(top); // pc 4 -> 1
        kb.place_label(done);
        kb.nop(); // pc 5 — done label actually binds here
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(k.fetch(3).target, Some(5));
        assert_eq!(k.fetch(4).target, Some(1));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut kb = KernelBuilder::new("bad");
        let l = kb.new_label();
        kb.bra(l);
        kb.exit();
        assert_eq!(kb.build().unwrap_err(), KernelError::UnboundLabel(0));
    }

    #[test]
    fn register_out_of_range_is_an_error() {
        let mut kb = KernelBuilder::new("bad");
        kb.mov_imm(Reg(63), 0);
        kb.exit();
        assert_eq!(
            kb.build().unwrap_err(),
            KernelError::RegisterOutOfRange(Reg(63))
        );
    }

    #[test]
    fn empty_kernel_is_an_error() {
        let kb = KernelBuilder::new("empty");
        assert_eq!(kb.build().unwrap_err(), KernelError::Empty);
    }

    #[test]
    fn missing_exit_is_an_error() {
        let mut kb = KernelBuilder::new("noexit");
        kb.mov_imm(Reg(0), 0);
        assert_eq!(kb.build().unwrap_err(), KernelError::NoExit);
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let mut kb = KernelBuilder::new("g");
        kb.guard(PredReg(1), false);
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(1), 2);
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(
            k.fetch(0).guard,
            Some(PredGuard {
                pred: PredReg(1),
                expected: false
            })
        );
        assert_eq!(k.fetch(1).guard, None);
    }

    #[test]
    fn predicate_out_of_range_is_an_error() {
        let mut kb = KernelBuilder::new("badp");
        kb.setp_imm(PredReg(4), CmpOp::Eq, Reg(0), 0);
        kb.exit();
        assert_eq!(
            kb.build().unwrap_err(),
            KernelError::PredicateOutOfRange(PredReg(4))
        );
    }

    #[test]
    fn regs_per_thread_counts_high_water_mark() {
        let mut kb = KernelBuilder::new("hw");
        kb.mov_imm(Reg(12), 0);
        kb.exit();
        assert_eq!(kb.build().unwrap().regs_per_thread(), 13);
    }

    #[test]
    fn display_lists_instructions() {
        let mut kb = KernelBuilder::new("d");
        kb.mov_imm(Reg(0), 5);
        kb.exit();
        let text = kb.build().unwrap().to_string();
        assert!(text.contains(".kernel d"));
        assert!(text.contains("mov R0"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn selp_and_shfl_helpers() {
        let mut kb = KernelBuilder::new("s");
        kb.selp(Reg(2), Reg(0), Reg(1), PredReg(0));
        kb.shfl(Reg(3), Reg(2), Reg(0));
        kb.exit();
        let k = kb.build().unwrap();
        assert_eq!(k.fetch(0).opcode, Opcode::Selp);
        assert_eq!(k.fetch(1).opcode, Opcode::Shfl);
        assert_eq!(k.regs_per_thread(), 4);
    }
}
