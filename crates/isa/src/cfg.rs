//! Control-flow analysis: instruction-level CFG and immediate
//! post-dominators (IPDOM).
//!
//! GPGPU-Sim (and the GPUs it models) handle branch divergence with a SIMT
//! reconvergence stack: when a warp's lanes take both sides of a branch, the
//! warp pushes both paths and reconverges at the branch's *immediate
//! post-dominator*. This module computes, for every instruction, the pc at
//! which a divergent branch at that instruction reconverges.
//!
//! Kernels in this reproduction are small (tens to a few hundred
//! instructions), so we compute post-dominators directly on the
//! instruction-level CFG with the classic iterative Cooper–Harvey–Kennedy
//! algorithm on the reverse graph.

use crate::kernel::Kernel;
use crate::op::Opcode;

/// Per-instruction reconvergence-pc table for a kernel.
///
/// # Example
///
/// ```rust
/// use prf_isa::{KernelBuilder, ReconvergenceTable, Reg, PredReg, CmpOp};
///
/// # fn main() -> Result<(), prf_isa::KernelError> {
/// let mut kb = KernelBuilder::new("diamond");
/// kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16);
/// let else_ = kb.new_label();
/// let join = kb.new_label();
/// kb.bra_if(PredReg(0), false, else_); // pc 1
/// kb.mov_imm(Reg(1), 1);               // pc 2 (then)
/// kb.bra(join);                        // pc 3
/// kb.place_label(else_);
/// kb.mov_imm(Reg(1), 2);               // pc 4 (else)
/// kb.place_label(join);
/// kb.exit();                           // pc 5 (join)
/// let k = kb.build()?;
/// let rt = ReconvergenceTable::compute(&k);
/// assert_eq!(rt.reconvergence_pc(1), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconvergenceTable {
    /// `ipdom[pc]` = immediate post-dominator pc, or `None` when the
    /// instruction post-dominates to exit (e.g. `Exit` itself).
    ipdom: Vec<Option<usize>>,
}

/// Virtual exit node index used internally (one past the last instruction).
pub(crate) fn exit_node(len: usize) -> usize {
    len
}

/// Successor pcs of the instruction at `pc`.
///
/// `Exit` flows to the virtual exit; a branch flows to its target and — when
/// it is predicated (can fall through) — also to `pc + 1`; everything else
/// falls through. An unconditional `Bra` at the end of the array has only
/// its target.
pub(crate) fn successors(kernel: &Kernel, pc: usize) -> Vec<usize> {
    let len = kernel.len();
    let i = kernel.fetch(pc);
    match i.opcode {
        Opcode::Exit => vec![exit_node(len)],
        Opcode::Bra => {
            let t = i.target.expect("validated kernel: branch has target");
            if i.guard.is_some() {
                // Divergent/conditional branch: both paths possible.
                let ft = pc + 1;
                if ft < len && ft != t {
                    vec![t, ft]
                } else {
                    vec![t]
                }
            } else {
                vec![t]
            }
        }
        _ => {
            let ft = pc + 1;
            if ft < len {
                vec![ft]
            } else {
                // Fall off the end: treat as exit (validated kernels always
                // end in Exit or a branch, but be safe).
                vec![exit_node(len)]
            }
        }
    }
}

impl ReconvergenceTable {
    /// Computes the IPDOM table for a validated kernel.
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.len();
        let exit = exit_node(n);
        // Build predecessor lists on the forward graph (so the reverse graph
        // successor sets are the forward predecessors).
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for pc in 0..n {
            for s in successors(kernel, pc) {
                preds[s].push(pc);
            }
        }

        // Reverse post-order on the *reverse* CFG starting from exit, i.e.
        // a post-order DFS over predecessor edges... easier: compute order
        // by DFS on the reverse graph (edges exit->..., using forward
        // successors reversed). We need, for each node, its successors in
        // the reverse graph = forward predecessors = preds (already built
        // per node as entries feeding into it)? No: preds[s] lists forward
        // predecessors of s. In the reverse graph, the successors of s are
        // exactly preds[s]. Good.
        let mut order = Vec::with_capacity(n + 1);
        let mut visited = vec![false; n + 1];
        // Iterative post-order DFS from exit over reverse edges.
        let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
        visited[exit] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < preds[node].len() {
                let next = preds[node][*idx];
                *idx += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        // `order` is post-order of the reverse-graph DFS; reverse it to get
        // reverse post-order (exit first).
        order.reverse();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, &node) in order.iter().enumerate() {
            rpo_index[node] = i;
        }

        // Cooper–Harvey–Kennedy iterative dominators on the reverse graph.
        let undef = usize::MAX;
        let mut idom = vec![undef; n + 1];
        idom[exit] = exit;
        let intersect = |idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a];
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                // Successors of `node` in the reverse graph are the forward
                // successors of `node`... careful: dominance on the reverse
                // graph uses the reverse graph's *predecessors*, which are
                // the forward successors.
                let fwd_succs = if node == exit {
                    Vec::new()
                } else {
                    successors(kernel, node)
                };
                let mut new_idom = undef;
                for &p in &fwd_succs {
                    if idom[p] != undef && rpo_index[p] != usize::MAX {
                        new_idom = if new_idom == undef {
                            p
                        } else {
                            intersect(&idom, &rpo_index, new_idom, p)
                        };
                    }
                }
                if new_idom != undef && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        let ipdom = (0..n)
            .map(|pc| {
                let d = idom[pc];
                if d == undef || d == exit {
                    None
                } else {
                    Some(d)
                }
            })
            .collect();
        ReconvergenceTable { ipdom }
    }

    /// The reconvergence pc for a (possibly divergent) branch at `pc`:
    /// the immediate post-dominator, or `None` when the paths only rejoin at
    /// thread exit.
    pub fn reconvergence_pc(&self, pc: usize) -> Option<usize> {
        self.ipdom.get(pc).copied().flatten()
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.ipdom.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ipdom.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::op::CmpOp;
    use crate::reg::{PredReg, Reg};

    /// Straight-line code: every instruction's ipdom is the next one.
    #[test]
    fn straight_line() {
        let mut kb = KernelBuilder::new("s");
        kb.mov_imm(Reg(0), 0);
        kb.iadd_imm(Reg(1), Reg(0), 1);
        kb.exit();
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        assert_eq!(rt.reconvergence_pc(0), Some(1));
        assert_eq!(rt.reconvergence_pc(1), Some(2));
        assert_eq!(rt.reconvergence_pc(2), None); // Exit
        assert_eq!(rt.len(), 3);
        assert!(!rt.is_empty());
    }

    /// If/else diamond reconverges at the join.
    #[test]
    fn diamond_reconverges_at_join() {
        let mut kb = KernelBuilder::new("d");
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16); // 0
        let else_ = kb.new_label();
        let join = kb.new_label();
        kb.bra_if(PredReg(0), false, else_); // 1
        kb.mov_imm(Reg(1), 1); // 2
        kb.bra(join); // 3
        kb.place_label(else_);
        kb.mov_imm(Reg(1), 2); // 4
        kb.place_label(join);
        kb.iadd_imm(Reg(2), Reg(1), 0); // 5
        kb.exit(); // 6
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        assert_eq!(rt.reconvergence_pc(1), Some(5));
        // Inside the then-arm, ipdoms chain to the join.
        assert_eq!(rt.reconvergence_pc(2), Some(3));
        assert_eq!(rt.reconvergence_pc(3), Some(5));
        assert_eq!(rt.reconvergence_pc(4), Some(5));
    }

    /// A do-while loop: the backward branch reconverges at the fall-through.
    #[test]
    fn loop_backedge_reconverges_after_loop() {
        let mut kb = KernelBuilder::new("l");
        kb.mov_imm(Reg(0), 0); // 0
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(0), Reg(0), 1); // 1
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 10); // 2
        kb.bra_if(PredReg(0), true, top); // 3
        kb.stg(Reg(0), Reg(0), 0); // 4
        kb.exit(); // 5
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        assert_eq!(rt.reconvergence_pc(3), Some(4));
    }

    /// A guarded early-exit: divergent paths only rejoin at thread exit, so
    /// the branch that jumps over the exit reconverges after it.
    #[test]
    fn branch_over_exit() {
        let mut kb = KernelBuilder::new("e");
        kb.setp_imm(PredReg(0), CmpOp::Ge, Reg(0), 100); // 0
        let cont = kb.new_label();
        kb.bra_if(PredReg(0), false, cont); // 1
        kb.exit(); // 2  (threads with R0>=100 leave)
        kb.place_label(cont);
        kb.mov_imm(Reg(1), 7); // 3
        kb.exit(); // 4
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        // pc1's successors: 3 (taken) and 2 (fallthrough, which exits).
        // Their only common post-dominator is the virtual exit -> None.
        assert_eq!(rt.reconvergence_pc(1), None);
    }

    /// Nested diamonds: inner reconverges before outer.
    #[test]
    fn nested_diamonds() {
        let mut kb = KernelBuilder::new("n");
        let outer_else = kb.new_label();
        let outer_join = kb.new_label();
        let inner_else = kb.new_label();
        let inner_join = kb.new_label();
        kb.bra_if(PredReg(0), false, outer_else); // 0
        kb.bra_if(PredReg(1), false, inner_else); // 1
        kb.mov_imm(Reg(0), 1); // 2
        kb.bra(inner_join); // 3
        kb.place_label(inner_else);
        kb.mov_imm(Reg(0), 2); // 4
        kb.place_label(inner_join);
        kb.mov_imm(Reg(1), 3); // 5
        kb.bra(outer_join); // 6
        kb.place_label(outer_else);
        kb.mov_imm(Reg(0), 4); // 7
        kb.place_label(outer_join);
        kb.exit(); // 8
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        assert_eq!(rt.reconvergence_pc(1), Some(5)); // inner join
        assert_eq!(rt.reconvergence_pc(0), Some(8)); // outer join
    }

    /// IPDOM must match a brute-force post-dominator computation on random
    /// structured kernels.
    #[test]
    fn matches_brute_force_postdominators() {
        // Brute force: node D post-dominates N if every path N..exit passes
        // through D. Compute full postdom sets by iterative dataflow, then
        // ipdom = the postdominator (other than self) that is dominated by
        // all other postdominators.
        let mut kb = KernelBuilder::new("bf");
        let l1 = kb.new_label();
        let l2 = kb.new_label();
        let l3 = kb.new_label();
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 5); // 0
        kb.bra_if(PredReg(0), true, l1); // 1
        kb.mov_imm(Reg(1), 1); // 2
        kb.bra_if(PredReg(1), true, l2); // 3
        kb.mov_imm(Reg(2), 2); // 4
        kb.place_label(l1);
        kb.mov_imm(Reg(3), 3); // 5
        kb.place_label(l2);
        kb.setp_imm(PredReg(1), CmpOp::Gt, Reg(1), 0); // 6
        kb.bra_if(PredReg(1), false, l3); // 7
        kb.mov_imm(Reg(4), 4); // 8
        kb.place_label(l3);
        kb.exit(); // 9
        let k = kb.build().unwrap();

        let n = k.len();
        let exit = n;
        // postdom[v] = set of nodes post-dominating v (incl. v).
        let full: u64 = (1u64 << (n + 1)) - 1;
        let mut pdom = vec![full; n + 1];
        pdom[exit] = 1u64 << exit;
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                let succs = successors(&k, v);
                let mut meet = full;
                for s in &succs {
                    meet &= pdom[*s];
                }
                let new = meet | (1u64 << v);
                if new != pdom[v] {
                    pdom[v] = new;
                    changed = true;
                }
            }
        }
        let rt = ReconvergenceTable::compute(&k);
        for v in 0..n {
            // strict postdominators of v
            let strict = pdom[v] & !(1u64 << v);
            // ipdom = the strict postdominator that is postdominated by all
            // other strict postdominators.
            let mut ip = None;
            for (d, pd) in pdom.iter().enumerate().take(n + 1) {
                if strict & (1u64 << d) != 0 {
                    let others = strict & !(1u64 << d);
                    if others & !pd == 0 {
                        ip = Some(d);
                        break;
                    }
                }
            }
            let expected = match ip {
                Some(d) if d < n => Some(d),
                _ => None,
            };
            assert_eq!(rt.reconvergence_pc(v), expected, "mismatch at pc {v}");
        }
    }
}
