//! Grid / CTA / warp / thread geometry.
//!
//! The paper's Table I characterises each benchmark by *registers per
//! thread* and *threads per CTA*; several benchmarks use CTA sizes that are
//! not multiples of the warp size (sad: 61, NN: 169, btree: 508), which
//! produces partially-populated last warps. [`GridConfig`] models all of
//! that.

use std::fmt;

/// Number of threads per warp (fixed at 32, as on all NVIDIA GPUs the paper
/// considers).
pub const WARP_SIZE: usize = 32;

/// A 3-component dimension. Only `x` is commonly exercised by the
/// reproduction workloads but the full shape is kept for fidelity with the
/// CUDA launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// x extent.
    pub x: u32,
    /// y extent.
    pub y: u32,
    /// z extent.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension `(x, 1, 1)`.
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// Total element count `x*y*z`.
    pub fn count(self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

/// Identifier of a CTA within a grid (flattened index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtaId(pub u32);

impl fmt::Display for CtaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cta{}", self.0)
    }
}

/// The position of one thread inside a launch: which CTA, and which thread
/// within the CTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadCoord {
    /// Flattened CTA index.
    pub cta: CtaId,
    /// Flattened thread index within the CTA.
    pub tid: u32,
}

impl ThreadCoord {
    /// Lane index within the warp.
    pub fn lane(self) -> u32 {
        self.tid % WARP_SIZE as u32
    }

    /// Warp index within the CTA.
    pub fn warp_in_cta(self) -> u32 {
        self.tid / WARP_SIZE as u32
    }
}

/// Launch geometry for one kernel: grid and CTA dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridConfig {
    /// Number of CTAs (flattened; `Dim3::count` of the CUDA grid dim).
    pub num_ctas: u32,
    /// Threads per CTA (flattened; may be any value ≥ 1, not necessarily a
    /// multiple of [`WARP_SIZE`]).
    pub threads_per_cta: u32,
}

impl GridConfig {
    /// Creates a launch geometry.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(num_ctas: u32, threads_per_cta: u32) -> Self {
        assert!(num_ctas > 0, "grid must have at least one CTA");
        assert!(threads_per_cta > 0, "CTA must have at least one thread");
        GridConfig {
            num_ctas,
            threads_per_cta,
        }
    }

    /// Warps per CTA (ceiling division; the last warp may be partial).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(WARP_SIZE as u32)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.num_ctas) * u64::from(self.threads_per_cta)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.num_ctas) * u64::from(self.warps_per_cta())
    }

    /// The 32-bit lane-active mask of warp `warp_in_cta`: all ones except in
    /// the final warp of a CTA whose size is not a warp multiple.
    pub fn active_mask(&self, warp_in_cta: u32) -> u32 {
        let start = warp_in_cta * WARP_SIZE as u32;
        let end = self.threads_per_cta.min(start + WARP_SIZE as u32);
        if end <= start {
            return 0;
        }
        let n = end - start;
        if n == 32 {
            u32::MAX
        } else {
            (1u32 << n) - 1
        }
    }
}

impl fmt::Display for GridConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.num_ctas, self.threads_per_cta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warps_per_cta_rounds_up() {
        assert_eq!(GridConfig::new(1, 256).warps_per_cta(), 8);
        assert_eq!(GridConfig::new(1, 61).warps_per_cta(), 2); // sad
        assert_eq!(GridConfig::new(1, 508).warps_per_cta(), 16); // btree
        assert_eq!(GridConfig::new(1, 169).warps_per_cta(), 6); // NN
        assert_eq!(GridConfig::new(1, 16).warps_per_cta(), 1); // nw
    }

    #[test]
    fn partial_last_warp_mask() {
        let g = GridConfig::new(1, 61);
        assert_eq!(g.active_mask(0), u32::MAX);
        assert_eq!(g.active_mask(1), (1u32 << 29) - 1);
        assert_eq!(g.active_mask(2), 0);
    }

    #[test]
    fn full_warp_mask_is_all_ones() {
        let g = GridConfig::new(4, 64);
        assert_eq!(g.active_mask(0), u32::MAX);
        assert_eq!(g.active_mask(1), u32::MAX);
    }

    #[test]
    fn totals() {
        let g = GridConfig::new(10, 256);
        assert_eq!(g.total_threads(), 2560);
        assert_eq!(g.total_warps(), 80);
    }

    #[test]
    fn thread_coord_lane_and_warp() {
        let t = ThreadCoord {
            cta: CtaId(2),
            tid: 70,
        };
        assert_eq!(t.lane(), 6);
        assert_eq!(t.warp_in_cta(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        GridConfig::new(1, 0);
    }

    #[test]
    fn dim3_helpers() {
        let d = Dim3::x(7);
        assert_eq!(d.count(), 7);
        assert_eq!(Dim3 { x: 2, y: 3, z: 4 }.count(), 24);
        assert_eq!(d.to_string(), "(7, 1, 1)");
        let e: Dim3 = 5u32.into();
        assert_eq!(e, Dim3::x(5));
    }
}
