//! Binary instruction encoding: a fixed 64-bit word per instruction.
//!
//! The paper's compiler profiler "counts the occurrences of each
//! architected register in the kernel binary" (§III-A1); this module
//! defines that binary. Kernels round-trip losslessly through
//! [`encode_kernel`]/[`decode_kernel`], which also gives the reproduction
//! a stable on-disk format.
//!
//! # Word layout (little-endian bit ranges)
//!
//! ```text
//!  bits  0..8   opcode (8 bits, includes the setp condition)
//!  bits  8..16  dst descriptor   (kind:2 | index:6)
//!  bits 16..24  src0 descriptor  (kind:2 | index:6)
//!  bits 24..32  src1 descriptor
//!  bits 32..40  src2 descriptor
//!  bits 40..44  guard (valid:1 | expected:1 | pred:2)
//!  bits 44..64  target / memory offset / inline payload (20 bits)
//! ```
//!
//! Immediates and wide fields that do not fit inline (32-bit immediates,
//! 20-bit-plus targets) are stored in a constant pool appended after the
//! instruction words; the descriptor then holds a pool index.

use crate::instr::{Dst, Instruction, Operand, PredGuard};
use crate::kernel::{Kernel, KernelBuilder, KernelError};
use crate::op::{CmpOp, Opcode};
use crate::reg::{PredReg, Reg, SpecialReg};

/// Encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The word stream ended unexpectedly or had a bad header.
    Truncated,
    /// Magic number mismatch — not an encoded kernel.
    BadMagic,
    /// An opcode byte that no instruction maps to.
    BadOpcode(u8),
    /// An operand descriptor with an invalid kind/index combination.
    BadOperand(u8),
    /// A constant-pool index out of range.
    BadPoolIndex(u32),
    /// The decoded kernel failed validation.
    Invalid(KernelError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded kernel is truncated"),
            CodecError::BadMagic => write!(f, "missing kernel magic number"),
            CodecError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#x}"),
            CodecError::BadOperand(b) => write!(f, "invalid operand descriptor {b:#x}"),
            CodecError::BadPoolIndex(i) => write!(f, "constant-pool index {i} out of range"),
            CodecError::Invalid(e) => write!(f, "decoded kernel is invalid: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Magic number at the head of every encoded kernel ("PRFK").
pub const MAGIC: u32 = 0x5052_464B;

const OPCODES: &[Opcode] = &[
    Opcode::Mov,
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMul,
    Opcode::IMad,
    Opcode::IMin,
    Opcode::IMax,
    Opcode::IAnd,
    Opcode::IOr,
    Opcode::IXor,
    Opcode::IShl,
    Opcode::IShr,
    Opcode::FAdd,
    Opcode::FMul,
    Opcode::FFma,
    Opcode::FRcp,
    Opcode::FSqrt,
    Opcode::FLog2,
    Opcode::FExp2,
    Opcode::Setp(CmpOp::Eq),
    Opcode::Setp(CmpOp::Ne),
    Opcode::Setp(CmpOp::Lt),
    Opcode::Setp(CmpOp::Le),
    Opcode::Setp(CmpOp::Gt),
    Opcode::Setp(CmpOp::Ge),
    Opcode::Setp(CmpOp::Ult),
    Opcode::Setp(CmpOp::Uge),
    Opcode::Selp,
    Opcode::Ldg,
    Opcode::Stg,
    Opcode::Lds,
    Opcode::Sts,
    Opcode::Shfl,
    Opcode::Bra,
    Opcode::Bar,
    Opcode::Exit,
    Opcode::Nop,
];

fn opcode_byte(op: Opcode) -> u8 {
    OPCODES
        .iter()
        .position(|&o| o == op)
        .expect("every opcode is in the table") as u8
}

fn byte_opcode(b: u8) -> Result<Opcode, CodecError> {
    OPCODES
        .get(b as usize)
        .copied()
        .ok_or(CodecError::BadOpcode(b))
}

// Operand descriptor kinds.
const K_NONE: u64 = 0;
const K_REG: u64 = 1;
const K_SPECIAL: u64 = 2;
const K_POOL_IMM: u64 = 3;

fn special_index(s: SpecialReg) -> u64 {
    match s {
        SpecialReg::TidX => 0,
        SpecialReg::CtaIdX => 1,
        SpecialReg::NTidX => 2,
        SpecialReg::NCtaIdX => 3,
        SpecialReg::LaneId => 4,
        SpecialReg::WarpId => 5,
        SpecialReg::GlobalTid => 6,
    }
}

fn index_special(i: u64) -> Option<SpecialReg> {
    Some(match i {
        0 => SpecialReg::TidX,
        1 => SpecialReg::CtaIdX,
        2 => SpecialReg::NTidX,
        3 => SpecialReg::NCtaIdX,
        4 => SpecialReg::LaneId,
        5 => SpecialReg::WarpId,
        6 => SpecialReg::GlobalTid,
        _ => return None,
    })
}

/// Encodes a kernel into a word stream:
/// `[MAGIC, n_instrs, n_pool, instr_words(2 each: lo, hi)…, pool…]`,
/// all as `u32` pairs packed into `u64` instruction words.
pub fn encode_kernel(kernel: &Kernel) -> Vec<u32> {
    let mut pool: Vec<u32> = Vec::new();
    let mut words: Vec<u64> = Vec::with_capacity(kernel.len());

    let pool_index = |v: u32, pool: &mut Vec<u32>| -> u64 {
        // Deduplicate pool constants.
        if let Some(i) = pool.iter().position(|&p| p == v) {
            i as u64
        } else {
            pool.push(v);
            (pool.len() - 1) as u64
        }
    };

    for i in kernel.instructions() {
        let mut w: u64 = u64::from(opcode_byte(i.opcode));
        // dst
        let dst_desc = match i.dst {
            Dst::None => K_NONE << 6,
            Dst::Reg(r) => (K_REG << 6) | r.index() as u64,
            Dst::Pred(p) => (K_SPECIAL << 6) | p.index() as u64,
        };
        w |= dst_desc << 8;
        // srcs
        for (slot, src) in i.srcs.iter().enumerate() {
            let desc = match src {
                None => K_NONE << 6,
                Some(Operand::Reg(r)) => (K_REG << 6) | r.index() as u64,
                Some(Operand::Special(s)) => (K_SPECIAL << 6) | special_index(*s),
                Some(Operand::Imm(v)) => (K_POOL_IMM << 6) | pool_index(*v, &mut pool),
            };
            w |= desc << (16 + 8 * slot);
        }
        // guard
        if let Some(g) = &i.guard {
            let gb = 1u64 | (u64::from(g.expected) << 1) | ((g.pred.index() as u64) << 2);
            w |= gb << 40;
        }
        // payload: branch target or memory offset (20 bits inline, else pool)
        let payload = i.target.map(|t| t as u32).unwrap_or(i.mem_offset);
        let payload = if payload < (1 << 19) {
            u64::from(payload)
        } else {
            (1 << 19) | pool_index(payload, &mut pool)
        };
        w |= payload << 44;
        words.push(w);
    }

    let mut out = Vec::with_capacity(3 + words.len() * 2 + pool.len());
    out.push(MAGIC);
    out.push(words.len() as u32);
    out.push(pool.len() as u32);
    for w in words {
        out.push(w as u32);
        out.push((w >> 32) as u32);
    }
    out.extend(pool);
    out
}

fn decode_operand(desc: u64, pool: &[u32]) -> Result<Option<Operand>, CodecError> {
    let kind = (desc >> 6) & 0x3;
    let idx = desc & 0x3f;
    Ok(match kind {
        K_NONE => None,
        K_REG => Some(Operand::Reg(Reg(idx as u8))),
        K_SPECIAL => Some(Operand::Special(
            index_special(idx).ok_or(CodecError::BadOperand(desc as u8))?,
        )),
        _ => Some(Operand::Imm(
            *pool
                .get(idx as usize)
                .ok_or(CodecError::BadPoolIndex(idx as u32))?,
        )),
    })
}

/// Decodes a word stream produced by [`encode_kernel`] back into a
/// validated kernel with the given name.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input or if the decoded kernel
/// fails validation.
pub fn decode_kernel(name: &str, words: &[u32]) -> Result<Kernel, CodecError> {
    if words.len() < 3 {
        return Err(CodecError::Truncated);
    }
    if words[0] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let n_instr = words[1] as usize;
    let n_pool = words[2] as usize;
    if words.len() != 3 + n_instr * 2 + n_pool {
        return Err(CodecError::Truncated);
    }
    let pool = &words[3 + n_instr * 2..];

    let mut kb = KernelBuilder::new(name);
    for k in 0..n_instr {
        let lo = u64::from(words[3 + 2 * k]);
        let hi = u64::from(words[3 + 2 * k + 1]);
        let w = lo | (hi << 32);
        let opcode = byte_opcode((w & 0xff) as u8)?;

        let dst_desc = (w >> 8) & 0xff;
        let dst = match (dst_desc >> 6) & 0x3 {
            K_NONE => Dst::None,
            K_REG => Dst::Reg(Reg((dst_desc & 0x3f) as u8)),
            K_SPECIAL => Dst::Pred(PredReg((dst_desc & 0x3f) as u8)),
            _ => return Err(CodecError::BadOperand(dst_desc as u8)),
        };

        let mut instr = Instruction::new(opcode).with_dst(dst);
        for slot in 0..3 {
            let desc = (w >> (16 + 8 * slot)) & 0xff;
            instr.srcs[slot] = decode_operand(desc, pool)?;
        }

        let gb = (w >> 40) & 0xf;
        if gb & 1 != 0 {
            instr.guard = Some(PredGuard {
                expected: gb & 2 != 0,
                pred: PredReg(((gb >> 2) & 0x3) as u8),
            });
        }

        let payload = (w >> 44) & 0xf_ffff;
        let value = if payload & (1 << 19) != 0 {
            let i = (payload & 0x7_ffff) as usize;
            *pool.get(i).ok_or(CodecError::BadPoolIndex(i as u32))?
        } else {
            payload as u32
        };
        if opcode.is_branch() {
            instr.target = Some(value as usize);
        } else {
            instr.mem_offset = value;
        }
        kb.push(instr);
    }
    kb.build().map_err(CodecError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::reg::Reg;

    fn sample_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("sample");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.mov_imm(Reg(1), 0xDEAD_BEEF);
        kb.mov_f32(Reg(2), 1.5);
        let top = kb.new_label();
        kb.place_label(top);
        kb.imad(Reg(3), Reg(1), Reg(2), Reg(3));
        kb.ldg(Reg(4), Reg(0), 128);
        kb.iadd_imm(Reg(5), Reg(5), 1);
        kb.setp_imm(crate::PredReg(1), CmpOp::Ult, Reg(5), 10);
        kb.bra_if(crate::PredReg(1), true, top);
        kb.guard(crate::PredReg(0), false);
        kb.stg(Reg(0), Reg(3), 4);
        kb.exit();
        kb.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_instructions() {
        let k = sample_kernel();
        let words = encode_kernel(&k);
        let k2 = decode_kernel("sample", &words).unwrap();
        assert_eq!(k.instructions(), k2.instructions());
        assert_eq!(k.regs_per_thread(), k2.regs_per_thread());
    }

    #[test]
    fn pool_deduplicates_constants() {
        let mut kb = KernelBuilder::new("dup");
        for _ in 0..5 {
            kb.mov_imm(Reg(0), 0x1234_5678);
        }
        kb.exit();
        let words = encode_kernel(&kb.build().unwrap());
        let n_pool = words[2];
        assert_eq!(n_pool, 1, "repeated immediate stored once");
    }

    #[test]
    fn every_opcode_roundtrips() {
        for (i, &op) in OPCODES.iter().enumerate() {
            assert_eq!(opcode_byte(op), i as u8);
            assert_eq!(byte_opcode(i as u8).unwrap(), op);
        }
        assert!(byte_opcode(200).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_kernel("x", &[0, 0, 0]).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn truncated_rejected() {
        let k = sample_kernel();
        let mut words = encode_kernel(&k);
        words.pop();
        assert_eq!(
            decode_kernel("x", &words).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            decode_kernel("x", &[MAGIC]).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn static_profile_identical_after_roundtrip() {
        // The compiler profiler must see the same "binary".
        let k = sample_kernel();
        let k2 = decode_kernel("sample", &encode_kernel(&k)).unwrap();
        let p1 = crate::StaticRegisterProfile::analyze(&k);
        let p2 = crate::StaticRegisterProfile::analyze(&k2);
        assert_eq!(p1.counts(), p2.counts());
    }

    #[test]
    fn encoded_size_is_compact() {
        let k = sample_kernel();
        let words = encode_kernel(&k);
        // Header (3) + 2 per instruction + small pool.
        assert!(words.len() <= 3 + 2 * k.len() + 4);
    }

    #[test]
    fn suite_kernels_roundtrip() {
        // Smoke over something bigger: the sample plus a loop-heavy kernel.
        let mut kb = KernelBuilder::new("big");
        for r in 0..40u8 {
            kb.mov_imm(Reg(r), u32::from(r) * 3);
        }
        let l = kb.new_label();
        kb.place_label(l);
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.setp_imm(crate::PredReg(0), CmpOp::Lt, Reg(0), 1000);
        kb.bra_if(crate::PredReg(0), true, l);
        kb.exit();
        let k = kb.build().unwrap();
        let k2 = decode_kernel("big", &encode_kernel(&k)).unwrap();
        assert_eq!(k.instructions(), k2.instructions());
    }
}
