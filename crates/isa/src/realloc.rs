//! GREENER-style register reallocation: interference coloring that
//! compacts the architectural register set.
//!
//! The paper's compiler side stops at static occurrence counts
//! ([`crate::analysis::StaticRegisterProfile`]); GREENER (PAPERS.md)
//! goes further and *rewrites* the kernel so that fewer registers are
//! allocated and the hot ones sit at low indices. This module implements
//! that pass over our ISA:
//!
//! 1. compute per-instruction liveness ([`crate::liveness::Liveness`]),
//! 2. build an interference graph with classic Chaitin def-point edges —
//!    at every instruction that writes a general-purpose register
//!    (guarded or not), the written register interferes with everything
//!    live out of that instruction,
//! 3. color greedily in a deterministic order (static occurrence count
//!    descending, register index ascending as tie-break), each register
//!    taking the lowest color unused by its already-colored neighbours,
//! 4. rewrite every operand through the resulting map and rebuild the
//!    kernel, shrinking `regs_per_thread`.
//!
//! The ordering rule is the determinism contract: given the same kernel
//! the pass always produces the same mapping, and because hot registers
//! are colored first with lowest-available colors, dynamic access traffic
//! concentrates in low indices — exactly what the pilot/main partition
//! split in `prf-sim` rewards (low-index hot registers land in the fast
//! partition more often).
//!
//! ## Soundness notes
//!
//! * **Def-point edges cover conditional writes.** A guarded non-`selp`
//!   write does not kill its destination (the old value merges through
//!   squashed lanes), but it is still a def: the edge set therefore keeps
//!   every value observable through a squashed lane in its own color.
//! * **Read-before-write registers** read zero. They are live from entry,
//!   so any def that could clobber them while they are still readable
//!   gets an interference edge; two never-written registers may share a
//!   color (both are always zero).
//! * **`shfl` sources are pinned.** `shfl dst, src, lane` reads `src`
//!   from another lane whose divergent control path need not reach the
//!   `shfl`, so per-lane CFG liveness cannot prove merging `src` safe.
//!   Every register appearing as a shuffle source interferes with *all*
//!   other referenced registers: it keeps a dedicated color that only its
//!   original writers touch, making the cross-lane read exact.
//! * **No instructions are added or removed.** Dead writes are reported
//!   by the liveness layer but deliberately not eliminated: downstream
//!   acceptance (the `prf-fuzz` differential harness) pins instruction
//!   counts bit-for-bit, and the energy win from dead ranges is credited
//!   by the power-gating model instead (`prf-core::gating`).

use crate::instr::{Dst, Operand};
use crate::kernel::{Kernel, KernelBuilder, KernelError};
use crate::liveness::{Liveness, RegSet};
use crate::reg::{Reg, MAX_ARCH_REGS};

/// Outcome of [`reallocate`]: the rewritten kernel plus the evidence a
/// caller needs for diagnostics and energy accounting.
#[derive(Debug, Clone)]
pub struct Realloc {
    /// The rewritten, revalidated kernel (same name, same instruction
    /// count, compacted register set).
    pub kernel: Kernel,
    /// `map[i]` = new register for old register `Reg(i)`, for every old
    /// register actually referenced by the kernel; `None` for indices
    /// below the old `regs_per_thread` that no instruction mentions.
    pub map: Vec<Option<Reg>>,
    /// Old `regs_per_thread`.
    pub old_regs: u8,
    /// New `regs_per_thread` after compaction.
    pub new_regs: u8,
    /// Registers pinned to exclusive colors because a `shfl` reads them
    /// cross-lane.
    pub pinned: RegSet,
    /// Number of unconditional register writes whose value is provably
    /// never read (left in place; see module docs).
    pub dead_writes: usize,
    /// Mean number of live registers per program point in the rewritten
    /// kernel — the numerator of the power-gating live fraction.
    pub avg_live_regs: f64,
}

impl Realloc {
    /// Fraction of `slots` register slots per thread that hold a live
    /// value on an average program point, clamped to `[0, 1]`. Callers
    /// pass the *original* allocation to credit gating for both
    /// compacted-away and transiently-dead slots.
    pub fn live_fraction_of(&self, slots: u8) -> f64 {
        if slots == 0 {
            return 0.0;
        }
        (self.avg_live_regs / slots as f64).clamp(0.0, 1.0)
    }
}

/// Dense interference graph over `MAX_ARCH_REGS` registers.
struct Interference {
    adj: [u64; MAX_ARCH_REGS],
}

impl Interference {
    fn new() -> Self {
        Interference {
            adj: [0; MAX_ARCH_REGS],
        }
    }

    fn add(&mut self, a: Reg, b: Reg) {
        if a == b {
            return;
        }
        self.adj[a.index()] |= 1u64 << b.index();
        self.adj[b.index()] |= 1u64 << a.index();
    }

    fn neighbours(&self, r: Reg) -> u64 {
        self.adj[r.index()]
    }
}

/// Registers mentioned anywhere in the kernel (reads or writes).
fn referenced_regs(kernel: &Kernel) -> RegSet {
    let mut set = RegSet::EMPTY;
    for i in kernel.instructions() {
        for r in i.reg_reads() {
            set.insert(r);
        }
        if let Some(d) = i.reg_write() {
            set.insert(d);
        }
    }
    set
}

/// Static occurrence count per register (reads + writes), the coloring
/// priority. Matches the paper's static-profile notion of "hot".
fn occurrence_counts(kernel: &Kernel) -> [u32; MAX_ARCH_REGS] {
    let mut counts = [0u32; MAX_ARCH_REGS];
    for i in kernel.instructions() {
        for r in i.reg_reads() {
            counts[r.index()] += 1;
        }
        if let Some(d) = i.reg_write() {
            counts[d.index()] += 1;
        }
    }
    counts
}

fn remap_operand(op: Operand, map: &[Option<Reg>]) -> Operand {
    match op {
        Operand::Reg(r) => Operand::Reg(map[r.index()].expect("referenced register has a color")),
        other => other,
    }
}

/// Runs the full reallocation pass on a validated kernel.
///
/// The result's kernel is rebuilt through [`KernelBuilder`] (so all
/// builder invariants are re-checked) and is guaranteed to have the same
/// instruction count, opcodes, guards, immediates, and branch structure
/// as the input — only general-purpose register names change.
pub fn reallocate(kernel: &Kernel) -> Result<Realloc, KernelError> {
    let lv = Liveness::compute(kernel);
    let referenced = referenced_regs(kernel);
    let pinned = lv.cross_lane_regs();

    // Interference: def-point edges against live-out, plus full pinning
    // for cross-lane (shfl) sources.
    let mut graph = Interference::new();
    for pc in 0..kernel.len() {
        let out = lv.live_out(pc);
        for d in lv.defs(pc).iter() {
            for r in out.iter() {
                graph.add(d, r);
            }
        }
    }
    for p in pinned.iter() {
        for r in referenced.iter() {
            graph.add(p, r);
        }
    }

    // Deterministic greedy coloring: hottest first, ties to the lower
    // index; each register takes the lowest color its neighbours left
    // free, which lands the hottest registers at the lowest indices.
    let counts = occurrence_counts(kernel);
    let mut order: Vec<Reg> = referenced.iter().collect();
    order.sort_by(|a, b| {
        counts[b.index()]
            .cmp(&counts[a.index()])
            .then(a.index().cmp(&b.index()))
    });

    let mut map: Vec<Option<Reg>> = vec![None; kernel.regs_per_thread() as usize];
    let mut color_of = [None::<u8>; MAX_ARCH_REGS];
    for r in order {
        let mut used = 0u64;
        let mut nbrs = graph.neighbours(r);
        while nbrs != 0 {
            let n = nbrs.trailing_zeros() as usize;
            nbrs &= nbrs - 1;
            if let Some(c) = color_of[n] {
                used |= 1u64 << c;
            }
        }
        let color = (!used).trailing_zeros() as u8;
        debug_assert!(
            (color as usize) < MAX_ARCH_REGS,
            "coloring exceeded register space"
        );
        color_of[r.index()] = Some(color);
        map[r.index()] = Some(Reg(color));
    }

    // Rewrite: 1:1 instruction copy with registers renamed. Branch
    // targets are already resolved indices, which `KernelBuilder::build`
    // range-checks again.
    let mut kb = KernelBuilder::new(kernel.name());
    for i in kernel.instructions() {
        let mut ni = i.clone();
        if let Dst::Reg(r) = ni.dst {
            ni.dst = Dst::Reg(map[r.index()].expect("referenced register has a color"));
        }
        for s in ni.srcs.iter_mut() {
            if let Some(op) = *s {
                *s = Some(remap_operand(op, &map));
            }
        }
        kb.push(ni);
    }
    let rewritten = kb.build()?;
    debug_assert_eq!(rewritten.len(), kernel.len());

    let lv_new = Liveness::compute(&rewritten);
    Ok(Realloc {
        old_regs: kernel.regs_per_thread(),
        new_regs: rewritten.regs_per_thread(),
        map,
        pinned,
        dead_writes: lv.dead_writes().len(),
        avg_live_regs: lv_new.avg_live_regs(),
        kernel: rewritten,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::op::CmpOp;
    use crate::reg::PredReg;
    use crate::validate::KernelValidator;

    /// Disjoint live ranges collapse onto one register.
    #[test]
    fn disjoint_ranges_share_a_color() {
        let mut kb = KernelBuilder::new("disjoint");
        kb.mov_imm(Reg(3), 1);
        kb.stg(Reg(3), Reg(3), 0); // R3 dies here
        kb.mov_imm(Reg(7), 2); // R7's range starts after R3's ends
        kb.stg(Reg(7), Reg(7), 4);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        assert_eq!(r.old_regs, 8);
        assert_eq!(r.new_regs, 1, "both ranges fit in one register");
        assert_eq!(r.kernel.len(), k.len());
        KernelValidator::new().validate(&r.kernel).unwrap();
    }

    /// Overlapping ranges must keep distinct registers.
    #[test]
    fn interfering_ranges_stay_apart() {
        let mut kb = KernelBuilder::new("overlap");
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(1), 2); // R0 live across this def -> interference
        kb.iadd(Reg(2), Reg(0), Reg(1));
        kb.stg(Reg(2), Reg(2), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        assert_ne!(r.map[0], r.map[1]);
        assert_eq!(r.new_regs, 2, "R2 can reuse a dead input's register");
    }

    /// The pass is a pure function of the kernel.
    #[test]
    fn deterministic() {
        let mut kb = KernelBuilder::new("det");
        let head = kb.new_label();
        kb.mov_imm(Reg(4), 0);
        kb.mov_imm(Reg(9), 10);
        kb.place_label(head);
        kb.iadd_imm(Reg(4), Reg(4), 1);
        kb.setp(PredReg(0), CmpOp::Lt, Reg(4), Reg(9));
        kb.bra_if(PredReg(0), true, head);
        kb.stg(Reg(4), Reg(4), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let a = reallocate(&k).unwrap();
        let b = reallocate(&k).unwrap();
        assert_eq!(a.map, b.map);
        assert_eq!(a.kernel.instructions(), b.kernel.instructions());
    }

    /// Hot registers land at lower indices than cold ones when both need
    /// a color at the same time.
    #[test]
    fn hot_registers_get_low_indices() {
        let mut kb = KernelBuilder::new("hot");
        kb.mov_imm(Reg(5), 1); // cold: 2 occurrences
        kb.mov_imm(Reg(10), 2); // hot: used repeatedly below
        kb.iadd(Reg(10), Reg(10), Reg(10));
        kb.iadd(Reg(10), Reg(10), Reg(10));
        kb.iadd(Reg(10), Reg(10), Reg(5));
        kb.stg(Reg(10), Reg(10), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        let hot = r.map[10].unwrap();
        let cold = r.map[5].unwrap();
        assert!(
            hot.index() < cold.index(),
            "hot {hot:?} must sit below cold {cold:?}"
        );
        assert_eq!(hot, Reg(0));
    }

    /// Shuffle sources keep an exclusive color: nothing else may alias a
    /// register that is read cross-lane.
    #[test]
    fn shfl_source_is_pinned_exclusively() {
        let mut kb = KernelBuilder::new("pin");
        kb.mov_imm(Reg(2), 1);
        kb.stg(Reg(2), Reg(2), 0); // R2 dies: normally reusable...
        kb.mov_imm(Reg(5), 7);
        kb.mov_imm(Reg(6), 0);
        kb.shfl(Reg(7), Reg(5), Reg(6)); // ...but R5 is a shfl source
        kb.stg(Reg(7), Reg(7), 4);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        assert!(r.pinned.contains(Reg(5)));
        let pin_color = r.map[5].unwrap();
        for (old, new) in r.map.iter().enumerate() {
            if old != 5 {
                assert_ne!(
                    *new,
                    Some(pin_color),
                    "R{old} aliases the pinned shfl source"
                );
            }
        }
        KernelValidator::new().validate(&r.kernel).unwrap();
    }

    /// Guarded writes keep their destination separate from values that
    /// must survive through squashed lanes.
    #[test]
    fn conditional_write_does_not_merge_live_through_value() {
        let mut kb = KernelBuilder::new("cond");
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(1), 2);
        kb.setp_imm(PredReg(0), CmpOp::Eq, Reg(0), 1);
        kb.guard(PredReg(0), false);
        kb.mov(Reg(1), Reg(0)); // conditional: R1's old value may survive
        kb.stg(Reg(1), Reg(1), 0);
        kb.stg(Reg(0), Reg(0), 4);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        assert_ne!(r.map[0], r.map[1]);
    }

    /// Structure other than register names is untouched.
    #[test]
    fn rewrite_preserves_structure() {
        let mut kb = KernelBuilder::new("struct");
        let done = kb.new_label();
        kb.mov_imm(Reg(3), 0);
        kb.setp_imm(PredReg(1), CmpOp::Eq, Reg(3), 0);
        kb.bra_if(PredReg(1), true, done);
        kb.iadd_imm(Reg(3), Reg(3), 1);
        kb.place_label(done);
        kb.stg(Reg(3), Reg(3), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let r = reallocate(&k).unwrap();
        assert_eq!(r.kernel.name(), k.name());
        assert_eq!(r.kernel.len(), k.len());
        for (a, b) in k.instructions().iter().zip(r.kernel.instructions()) {
            assert_eq!(a.opcode, b.opcode);
            assert_eq!(a.guard, b.guard);
            assert_eq!(a.target, b.target);
            assert_eq!(a.mem_offset, b.mem_offset);
        }
    }
}
