//! Static (compile-time) register analysis.
//!
//! This is the substrate of the paper's *compiler-based profiling* (§III-A1):
//! "count the occurrences of each architected register in the kernel binary".
//! Being static, it knows nothing about loop trip counts or branch paths —
//! exactly the weakness the pilot-warp profiler fixes on Category-2
//! workloads.

use crate::kernel::Kernel;
use crate::reg::{Reg, MAX_ARCH_REGS};

/// Static per-register occurrence counts for one kernel.
///
/// An "occurrence" is one appearance of the register as a source or
/// destination of any instruction, matching the paper's definition. Each
/// instruction is counted once regardless of how often it executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRegisterProfile {
    counts: [u64; MAX_ARCH_REGS],
}

impl StaticRegisterProfile {
    /// Analyses a kernel and counts static register occurrences.
    pub fn analyze(kernel: &Kernel) -> Self {
        let mut counts = [0u64; MAX_ARCH_REGS];
        for i in kernel.instructions() {
            for r in i.reg_reads() {
                counts[r.index()] += 1;
            }
            if let Some(r) = i.reg_write() {
                counts[r.index()] += 1;
            }
        }
        StaticRegisterProfile { counts }
    }

    /// Occurrence count of one register.
    pub fn count(&self, reg: Reg) -> u64 {
        self.counts[reg.index()]
    }

    /// Total occurrences across all registers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `n` most frequently occurring registers, highest count first.
    /// Ties break toward the lower register index (deterministic). Registers
    /// with zero occurrences are never returned.
    pub fn top_n(&self, n: usize) -> Vec<Reg> {
        let mut regs: Vec<(u64, usize)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, i))
            .collect();
        // Sort by count descending, then index ascending.
        regs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        regs.into_iter()
            .take(n)
            .map(|(_, i)| Reg(i as u8))
            .collect()
    }

    /// Fraction of all static occurrences captured by the given register
    /// set (the quantity plotted in the paper's Fig. 4, but for static
    /// counts).
    ///
    /// `regs` is treated as a *set*: duplicate entries are counted once,
    /// so the result is always in `[0, 1]`.
    pub fn coverage(&self, regs: &[Reg]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        // Dedupe via a register bitmask (MAX_ARCH_REGS < 64) so a caller
        // passing the same register twice cannot inflate coverage past 1.
        let mut seen = 0u64;
        let mut covered: u64 = 0;
        for r in regs {
            if r.is_valid() && seen & (1u64 << r.index()) == 0 {
                seen |= 1u64 << r.index();
                covered += self.count(*r);
            }
        }
        covered as f64 / total as f64
    }

    /// Raw counts indexed by register number.
    pub fn counts(&self) -> &[u64; MAX_ARCH_REGS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;

    #[test]
    fn counts_reads_and_writes() {
        let mut kb = KernelBuilder::new("k");
        kb.mov_imm(Reg(0), 1); // R0: 1
        kb.iadd(Reg(1), Reg(0), Reg(0)); // R0: +2, R1: 1
        kb.stg(Reg(1), Reg(0), 0); // R1: +1, R0: +1
        kb.exit();
        let p = StaticRegisterProfile::analyze(&kb.build().unwrap());
        assert_eq!(p.count(Reg(0)), 4);
        assert_eq!(p.count(Reg(1)), 2);
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn top_n_orders_by_count_then_index() {
        let mut kb = KernelBuilder::new("k");
        // R5 appears 3x, R2 2x, R9 2x, R0 1x.
        kb.mov_imm(Reg(5), 1);
        kb.iadd(Reg(5), Reg(5), Reg(2));
        kb.iadd(Reg(9), Reg(2), Reg(9));
        kb.mov_imm(Reg(0), 0);
        kb.exit();
        let p = StaticRegisterProfile::analyze(&kb.build().unwrap());
        assert_eq!(p.count(Reg(5)), 3);
        assert_eq!(p.top_n(3), vec![Reg(5), Reg(2), Reg(9)]);
        assert_eq!(p.top_n(10), vec![Reg(5), Reg(2), Reg(9), Reg(0)]);
    }

    #[test]
    fn coverage_fraction() {
        let mut kb = KernelBuilder::new("k");
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(0), 2);
        kb.mov_imm(Reg(0), 3);
        kb.mov_imm(Reg(1), 4);
        kb.exit();
        let p = StaticRegisterProfile::analyze(&kb.build().unwrap());
        assert!((p.coverage(&[Reg(0)]) - 0.75).abs() < 1e-12);
        assert!((p.coverage(&[Reg(0), Reg(1)]) - 1.0).abs() < 1e-12);
        assert_eq!(p.coverage(&[]), 0.0);
    }

    #[test]
    fn coverage_dedupes_and_never_exceeds_one() {
        let mut kb = KernelBuilder::new("dup");
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(0), 2);
        kb.mov_imm(Reg(1), 3);
        kb.exit();
        let p = StaticRegisterProfile::analyze(&kb.build().unwrap());
        // Duplicates count once: [R0, R0] covers exactly what [R0] does.
        let dup = p.coverage(&[Reg(0), Reg(0), Reg(0)]);
        assert!((dup - p.coverage(&[Reg(0)])).abs() < 1e-12);
        // The invariant the bug violated: coverage is a fraction, <= 1.
        let all_dup = p.coverage(&[Reg(0), Reg(1), Reg(0), Reg(1), Reg(0)]);
        assert!(
            all_dup <= 1.0,
            "coverage must stay a fraction, got {all_dup}"
        );
        assert!((all_dup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_counts_ignore_loop_structure() {
        // A loop body instruction is counted once even though it would
        // execute many times — the fundamental blind spot of compiler-based
        // profiling that the paper exploits.
        let mut kb = KernelBuilder::new("loop");
        kb.mov_imm(Reg(0), 0); // R0 x1
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(1), Reg(1), 1); // R1 x2 per appearance
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.setp_imm(crate::PredReg(0), crate::CmpOp::Lt, Reg(0), 1000);
        kb.bra_if(crate::PredReg(0), true, top);
        kb.exit();
        let p = StaticRegisterProfile::analyze(&kb.build().unwrap());
        // Static: R0 appears 4 times (mov dst, iadd dst+src, setp src);
        // dynamically it would be accessed thousands of times.
        assert_eq!(p.count(Reg(0)), 4);
        assert_eq!(p.count(Reg(1)), 2);
    }
}
