//! Opcodes, comparison operators, execution classes, and their functional
//! (value-level) semantics.
//!
//! The simulator executes kernels *functionally* — register values are real
//! `u32` words (floats are IEEE-754 bit patterns) and branches depend on
//! computed values. This is what lets loop trip counts and branch paths be
//! data-dependent, which in turn is what makes the paper's *compiler-based
//! profiling* inaccurate on Category-2 workloads (Fig. 4).

use std::fmt;

/// Integer/float comparison operator used by `SETP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpOp {
    /// Evaluates the comparison on two 32-bit words.
    ///
    /// Signed variants reinterpret the words as `i32`.
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => sa < sb,
            CmpOp::Le => sa <= sb,
            CmpOp::Gt => sa > sb,
            CmpOp::Ge => sa >= sb,
            CmpOp::Ult => a < b,
            CmpOp::Uge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Ult => "ult",
            CmpOp::Uge => "uge",
        };
        f.write_str(s)
    }
}

/// The execution-resource class of an instruction, used by the simulator to
/// pick a pipeline and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Integer ALU ops (adds, shifts, logic, compares, moves).
    IntAlu,
    /// Single-precision floating-point ops on the FP units.
    Fp,
    /// Special-function-unit ops (reciprocal, sqrt, log, exp).
    Sfu,
    /// Global/shared memory loads and stores (LSU).
    Mem,
    /// Control flow (branches, exit, barrier).
    Control,
}

/// Instruction opcode.
///
/// The set is deliberately small — just enough to express the synthetic
/// reproductions of the Rodinia/Parboil kernels — but every opcode has full
/// functional semantics via [`Opcode::eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Copy `src0` to `dst` (also used for immediate and special-reg moves).
    Mov,
    /// 32-bit wrapping integer add.
    IAdd,
    /// 32-bit wrapping integer subtract.
    ISub,
    /// 32-bit wrapping integer multiply (low half).
    IMul,
    /// Integer multiply-add: `dst = src0 * src1 + src2` (wrapping).
    IMad,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Logical shift left by `src1 & 31`.
    IShl,
    /// Logical shift right by `src1 & 31`.
    IShr,
    /// IEEE-754 single-precision add.
    FAdd,
    /// IEEE-754 single-precision multiply.
    FMul,
    /// Fused multiply-add `dst = src0 * src1 + src2`.
    FFma,
    /// Reciprocal approximation (SFU).
    FRcp,
    /// Square root approximation (SFU).
    FSqrt,
    /// Base-2 logarithm approximation (SFU).
    FLog2,
    /// Base-2 exponential approximation (SFU).
    FExp2,
    /// Set predicate from comparison of `src0` and `src1`.
    Setp(CmpOp),
    /// Select: `dst = pred ? src0 : src1` (predicate is the guard source).
    Selp,
    /// Load from global memory: `dst = mem[src0 + imm]`.
    Ldg,
    /// Store to global memory: `mem[src0 + imm] = src1`.
    Stg,
    /// Load from CTA-shared memory.
    Lds,
    /// Store to CTA-shared memory.
    Sts,
    /// Warp shuffle: `dst = value of src0 in lane (src1 & 31)`.
    Shfl,
    /// Branch to `target` (possibly predicated, possibly divergent).
    Bra,
    /// CTA-wide barrier.
    Bar,
    /// Terminate the thread.
    Exit,
    /// No operation (consumes an issue slot only).
    Nop,
}

impl Opcode {
    /// Returns the execution-resource class of the opcode.
    pub fn exec_class(self) -> ExecClass {
        use Opcode::*;
        match self {
            Mov | IAdd | ISub | IMul | IMad | IMin | IMax | IAnd | IOr | IXor | IShl | IShr
            | Setp(_) | Selp | Shfl | Nop => ExecClass::IntAlu,
            FAdd | FMul | FFma => ExecClass::Fp,
            FRcp | FSqrt | FLog2 | FExp2 => ExecClass::Sfu,
            Ldg | Stg | Lds | Sts => ExecClass::Mem,
            Bra | Bar | Exit => ExecClass::Control,
        }
    }

    /// Returns `true` for memory loads (`Ldg`, `Lds`).
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ldg | Opcode::Lds)
    }

    /// Returns `true` for memory stores (`Stg`, `Sts`).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Sts)
    }

    /// Returns `true` for global-memory accesses.
    pub fn is_global_mem(self) -> bool {
        matches!(self, Opcode::Ldg | Opcode::Stg)
    }

    /// Returns `true` if this opcode can change control flow.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Bra)
    }

    /// Evaluates a pure (non-memory, non-control) opcode on up to three
    /// 32-bit operands.
    ///
    /// Floating-point opcodes reinterpret the words as IEEE-754 `f32` bit
    /// patterns. `Setp` returns `1` for true and `0` for false.
    ///
    /// # Panics
    ///
    /// Panics if called on a memory, control, or `Shfl` opcode — those need
    /// machine state beyond the operand values and are executed by the
    /// simulator directly.
    pub fn eval(self, srcs: [u32; 3]) -> u32 {
        use Opcode::*;
        let [a, b, c] = srcs;
        let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
        match self {
            Mov => a,
            IAdd => a.wrapping_add(b),
            ISub => a.wrapping_sub(b),
            IMul => a.wrapping_mul(b),
            IMad => a.wrapping_mul(b).wrapping_add(c),
            IMin => ((a as i32).min(b as i32)) as u32,
            IMax => ((a as i32).max(b as i32)) as u32,
            IAnd => a & b,
            IOr => a | b,
            IXor => a ^ b,
            IShl => a.wrapping_shl(b & 31),
            IShr => a.wrapping_shr(b & 31),
            FAdd => (fa + fb).to_bits(),
            FMul => (fa * fb).to_bits(),
            FFma => fa.mul_add(fb, fc).to_bits(),
            FRcp => (1.0 / fa).to_bits(),
            FSqrt => fa.sqrt().to_bits(),
            FLog2 => fa.log2().to_bits(),
            FExp2 => fa.exp2().to_bits(),
            Setp(op) => u32::from(op.eval(a, b)),
            // The guard value is passed as the third operand by the executor.
            Selp => {
                if c != 0 {
                    a
                } else {
                    b
                }
            }
            Shfl | Ldg | Stg | Lds | Sts | Bra | Bar | Exit | Nop => {
                panic!("Opcode::eval called on non-pure opcode {self:?}")
            }
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self {
            Setp(c) => write!(f, "setp.{c}"),
            other => {
                let s = match other {
                    Mov => "mov",
                    IAdd => "iadd",
                    ISub => "isub",
                    IMul => "imul",
                    IMad => "imad",
                    IMin => "imin",
                    IMax => "imax",
                    IAnd => "and",
                    IOr => "or",
                    IXor => "xor",
                    IShl => "shl",
                    IShr => "shr",
                    FAdd => "fadd",
                    FMul => "fmul",
                    FFma => "ffma",
                    FRcp => "frcp",
                    FSqrt => "fsqrt",
                    FLog2 => "flog2",
                    FExp2 => "fexp2",
                    Selp => "selp",
                    Ldg => "ld.global",
                    Stg => "st.global",
                    Lds => "ld.shared",
                    Sts => "st.shared",
                    Shfl => "shfl",
                    Bra => "bra",
                    Bar => "bar.sync",
                    Exit => "exit",
                    Nop => "nop",
                    Setp(_) => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_wrap() {
        assert_eq!(Opcode::IAdd.eval([u32::MAX, 1, 0]), 0);
        assert_eq!(Opcode::ISub.eval([0, 1, 0]), u32::MAX);
        assert_eq!(Opcode::IMul.eval([0x8000_0000, 2, 0]), 0);
    }

    #[test]
    fn imad_combines_mul_and_add() {
        assert_eq!(Opcode::IMad.eval([3, 4, 5]), 17);
    }

    #[test]
    fn min_max_are_signed() {
        let neg1 = -1i32 as u32;
        assert_eq!(Opcode::IMin.eval([neg1, 1, 0]), neg1);
        assert_eq!(Opcode::IMax.eval([neg1, 1, 0]), 1);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(Opcode::IShl.eval([1, 33, 0]), 2);
        assert_eq!(Opcode::IShr.eval([4, 33, 0]), 2);
    }

    #[test]
    fn float_ops_roundtrip_bits() {
        let a = 1.5f32.to_bits();
        let b = 2.25f32.to_bits();
        assert_eq!(f32::from_bits(Opcode::FAdd.eval([a, b, 0])), 3.75);
        assert_eq!(f32::from_bits(Opcode::FMul.eval([a, b, 0])), 3.375);
        let fma = Opcode::FFma.eval([a, b, 1.0f32.to_bits()]);
        assert_eq!(f32::from_bits(fma), 1.5f32.mul_add(2.25, 1.0));
    }

    #[test]
    fn sfu_ops() {
        let x = 4.0f32.to_bits();
        assert_eq!(f32::from_bits(Opcode::FSqrt.eval([x, 0, 0])), 2.0);
        assert_eq!(f32::from_bits(Opcode::FRcp.eval([x, 0, 0])), 0.25);
        assert_eq!(f32::from_bits(Opcode::FLog2.eval([x, 0, 0])), 2.0);
        assert_eq!(
            f32::from_bits(Opcode::FExp2.eval([2.0f32.to_bits(), 0, 0])),
            4.0
        );
    }

    #[test]
    fn setp_signed_vs_unsigned() {
        let neg1 = -1i32 as u32;
        assert_eq!(Opcode::Setp(CmpOp::Lt).eval([neg1, 0, 0]), 1);
        assert_eq!(Opcode::Setp(CmpOp::Ult).eval([neg1, 0, 0]), 0);
        assert_eq!(Opcode::Setp(CmpOp::Uge).eval([neg1, 0, 0]), 1);
    }

    #[test]
    fn selp_picks_by_guard() {
        assert_eq!(Opcode::Selp.eval([10, 20, 1]), 10);
        assert_eq!(Opcode::Selp.eval([10, 20, 0]), 20);
    }

    #[test]
    fn cmp_op_eval_all_variants() {
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(CmpOp::Ne.eval(5, 6));
        assert!(CmpOp::Le.eval(5, 5));
        assert!(CmpOp::Gt.eval(6, 5));
        assert!(CmpOp::Ge.eval(5, 5));
    }

    #[test]
    fn exec_classes() {
        assert_eq!(Opcode::IAdd.exec_class(), ExecClass::IntAlu);
        assert_eq!(Opcode::FFma.exec_class(), ExecClass::Fp);
        assert_eq!(Opcode::FSqrt.exec_class(), ExecClass::Sfu);
        assert_eq!(Opcode::Ldg.exec_class(), ExecClass::Mem);
        assert_eq!(Opcode::Bra.exec_class(), ExecClass::Control);
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::Ldg.is_load());
        assert!(Opcode::Lds.is_load());
        assert!(Opcode::Stg.is_store());
        assert!(Opcode::Ldg.is_global_mem());
        assert!(!Opcode::Lds.is_global_mem());
        assert!(Opcode::Bra.is_branch());
        assert!(!Opcode::Exit.is_branch());
    }

    #[test]
    #[should_panic(expected = "non-pure opcode")]
    fn eval_rejects_memory_ops() {
        Opcode::Ldg.eval([0, 0, 0]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Opcode::Setp(CmpOp::Lt).to_string(), "setp.lt");
        assert_eq!(Opcode::Ldg.to_string(), "ld.global");
        assert_eq!(Opcode::Bar.to_string(), "bar.sync");
    }
}
