//! Per-instruction register liveness over the kernel CFG.
//!
//! This is the analysis layer of the GREENER-style compiler backend
//! (PAPERS.md): a classic backward may-liveness dataflow computed at
//! instruction granularity over the same CFG edges that
//! [`crate::cfg::ReconvergenceTable`] uses for IPDOM reconvergence.
//! The results feed two consumers:
//!
//! * [`crate::realloc`] builds an interference graph from the live-out
//!   sets and recolors the register set, and
//! * the power-gating energy model in `prf-core` credits leakage savings
//!   for register slots that are provably dead at most program points
//!   (summarised here by [`Liveness::live_slot_fraction`]).
//!
//! ## Predication semantics
//!
//! The executor (`prf-sim::exec`) gives guards two different meanings,
//! and liveness must mirror both exactly or the realloc pass would merge
//! registers whose values can still be observed:
//!
//! * For every opcode **except** `selp`, a guard squashes the lanes whose
//!   predicate disagrees — a guarded write is *conditional*. A
//!   conditional write is a def (it can clobber) but **not** a kill: the
//!   old value flows through the untaken lanes, so the destination stays
//!   live across the instruction.
//! * For `selp`, the guard is a *value selector*, not an execution mask:
//!   every active lane writes the destination unconditionally. `selp`
//!   therefore kills its destination like an unguarded write.
//!
//! Predicate registers and special registers live outside the register
//! file under study and are ignored entirely.
//!
//! ## Cross-lane reads
//!
//! `shfl dst, src, lane` reads `src` from *another lane*, whose control
//! path need not be a CFG path to the `shfl` itself. Per-lane CFG
//! liveness is therefore not a sound merging oracle for shuffle sources;
//! this module exposes them as [`Liveness::cross_lane_regs`] so the
//! realloc pass can pin them (see `realloc.rs` for the argument).

use crate::cfg;
use crate::kernel::Kernel;
use crate::op::Opcode;
use crate::reg::{Reg, MAX_ARCH_REGS};

/// A dense set of architectural registers (`R0..R62`), stored as a
/// 64-bit mask. `MAX_ARCH_REGS` is 63, so one word always suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        debug_assert!((r.index()) < MAX_ARCH_REGS);
        self.0 |= 1u64 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1u64 << r.index());
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// True when no register is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates members in ascending register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let bits = self.0;
        (0..MAX_ARCH_REGS as u8)
            .filter(move |i| bits & (1u64 << i) != 0)
            .map(Reg)
    }
}

/// Summary of one register's live region, at instruction granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// The architectural register.
    pub reg: Reg,
    /// First pc at which the register is live-in, if ever.
    pub first: Option<usize>,
    /// Last pc at which the register is live-in, if ever.
    pub last: Option<usize>,
    /// Number of program points (instruction entries) where it is live.
    pub live_points: usize,
}

/// Result of the backward liveness dataflow for one kernel.
///
/// All vectors are indexed by pc. `live_in[pc]` holds the registers whose
/// current value may still be read on some path starting at `pc`;
/// `live_out[pc]` is the union of the successors' live-in sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    uses: Vec<RegSet>,
    defs: Vec<RegSet>,
    kills: Vec<RegSet>,
    cross_lane: RegSet,
    regs_per_thread: u8,
}

/// Per-instruction transfer-function inputs: registers read, registers
/// written (conditionally or not), and registers written unconditionally.
fn def_use(kernel: &Kernel, pc: usize) -> (RegSet, RegSet, RegSet) {
    let i = kernel.fetch(pc);
    let mut uses = RegSet::EMPTY;
    for r in i.reg_reads() {
        uses.insert(r);
    }
    let mut defs = RegSet::EMPTY;
    let mut kills = RegSet::EMPTY;
    if let Some(d) = i.reg_write() {
        defs.insert(d);
        // A guarded write merges with the old value in squashed lanes, so
        // it must not kill. `selp` is the exception: its guard selects the
        // source value and every active lane writes the destination.
        if i.guard.is_none() || i.opcode == Opcode::Selp {
            kills.insert(d);
        }
    }
    (uses, defs, kills)
}

impl Liveness {
    /// Runs the backward fixed-point dataflow for `kernel`.
    ///
    /// Deterministic and O(n · iterations); kernels here are at most a
    /// few thousand instructions, so the simple reverse sweep converges
    /// quickly (loop nests add one sweep per nesting level).
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.len();
        let mut uses = Vec::with_capacity(n);
        let mut defs = Vec::with_capacity(n);
        let mut kills = Vec::with_capacity(n);
        let mut cross_lane = RegSet::EMPTY;
        for pc in 0..n {
            let (u, d, k) = def_use(kernel, pc);
            uses.push(u);
            defs.push(d);
            kills.push(k);
            let i = kernel.fetch(pc);
            if i.opcode == Opcode::Shfl {
                if let Some(src) = i.srcs[0].and_then(|o| o.as_reg()) {
                    cross_lane.insert(src);
                }
            }
        }

        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        let exit = cfg::exit_node(n);
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let mut out = RegSet::EMPTY;
                for s in cfg::successors(kernel, pc) {
                    if s != exit {
                        out = out.union(live_in[s]);
                    }
                }
                let inn = uses[pc].union(out.difference(kills[pc]));
                if out != live_out[pc] || inn != live_in[pc] {
                    live_out[pc] = out;
                    live_in[pc] = inn;
                    changed = true;
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            uses,
            defs,
            kills,
            cross_lane,
            regs_per_thread: kernel.regs_per_thread(),
        }
    }

    /// Registers live on entry to the instruction at `pc`.
    pub fn live_in(&self, pc: usize) -> RegSet {
        self.live_in[pc]
    }

    /// Registers live on exit from the instruction at `pc`.
    pub fn live_out(&self, pc: usize) -> RegSet {
        self.live_out[pc]
    }

    /// Registers read by the instruction at `pc`.
    pub fn uses(&self, pc: usize) -> RegSet {
        self.uses[pc]
    }

    /// Registers written (conditionally or not) by the instruction at `pc`.
    pub fn defs(&self, pc: usize) -> RegSet {
        self.defs[pc]
    }

    /// Registers written unconditionally (killed) by the instruction at `pc`.
    pub fn kills(&self, pc: usize) -> RegSet {
        self.kills[pc]
    }

    /// Registers read cross-lane by a `shfl` anywhere in the kernel.
    pub fn cross_lane_regs(&self) -> RegSet {
        self.cross_lane
    }

    /// Registers that are live on kernel entry (read before any write on
    /// some path). The executor defines their value as zero.
    pub fn live_at_entry(&self) -> RegSet {
        if self.live_in.is_empty() {
            RegSet::EMPTY
        } else {
            self.live_in[0]
        }
    }

    /// True when the instruction at `pc` performs a register write whose
    /// value can never be observed: the write is unconditional and the
    /// destination is dead afterwards. (Guarded non-`selp` writes are
    /// never reported — the merge with the old value is itself an
    /// observation hazard, and the write may be squashed anyway.)
    pub fn is_dead_write(&self, pc: usize) -> bool {
        let k = self.kills[pc];
        !k.is_empty() && k.difference(self.live_out[pc]) == k
    }

    /// Pcs of all dead writes, in program order.
    pub fn dead_writes(&self) -> Vec<usize> {
        (0..self.live_in.len())
            .filter(|&pc| self.is_dead_write(pc))
            .collect()
    }

    /// Per-register live-range summaries, ascending by register index.
    /// Registers never live anywhere still get an entry (with
    /// `live_points == 0`) if they are below `regs_per_thread`.
    pub fn live_ranges(&self) -> Vec<LiveRange> {
        (0..self.regs_per_thread)
            .map(|idx| {
                let reg = Reg(idx);
                let mut first = None;
                let mut last = None;
                let mut live_points = 0usize;
                for (pc, inn) in self.live_in.iter().enumerate() {
                    if inn.contains(reg) {
                        if first.is_none() {
                            first = Some(pc);
                        }
                        last = Some(pc);
                        live_points += 1;
                    }
                }
                LiveRange {
                    reg,
                    first,
                    last,
                    live_points,
                }
            })
            .collect()
    }

    /// Mean number of live registers per program point.
    pub fn avg_live_regs(&self) -> f64 {
        if self.live_in.is_empty() {
            return 0.0;
        }
        let total: u64 = self.live_in.iter().map(|s| s.len() as u64).sum();
        total as f64 / self.live_in.len() as f64
    }

    /// Fraction of the kernel's allocated register slots that hold a live
    /// value, averaged over program points — the static estimate the
    /// power-gating model consumes (`prf-core::gating`). In `[0, 1]`.
    pub fn live_slot_fraction(&self) -> f64 {
        if self.regs_per_thread == 0 {
            return 0.0;
        }
        (self.avg_live_regs() / self.regs_per_thread as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::op::CmpOp;
    use crate::reg::PredReg;

    #[test]
    fn straight_line_kill_and_use() {
        let mut kb = KernelBuilder::new("s");
        kb.mov_imm(Reg(0), 1); // #0 def R0
        kb.mov_imm(Reg(1), 2); // #1 def R1
        kb.iadd(Reg(2), Reg(0), Reg(1)); // #2 use R0,R1 def R2
        kb.stg(Reg(2), Reg(2), 0); // #3 use R2
        kb.exit(); // #4
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);

        assert!(lv.live_at_entry().is_empty());
        assert!(lv.live_in(2).contains(Reg(0)) && lv.live_in(2).contains(Reg(1)));
        assert!(
            !lv.live_out(2).contains(Reg(0)),
            "R0 dead after its last use"
        );
        assert!(lv.live_out(2).contains(Reg(2)));
        assert!(lv.live_in(4).is_empty());
        assert!(lv.dead_writes().is_empty());
    }

    #[test]
    fn dead_write_detected() {
        let mut kb = KernelBuilder::new("d");
        kb.mov_imm(Reg(0), 7); // #0 dead: overwritten before any use
        kb.mov_imm(Reg(0), 9); // #1
        kb.stg(Reg(0), Reg(0), 0); // #2
        kb.mov_imm(Reg(1), 3); // #3 dead: never read
        kb.exit(); // #4
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        assert_eq!(lv.dead_writes(), vec![0, 3]);
    }

    #[test]
    fn guarded_write_does_not_kill() {
        let mut kb = KernelBuilder::new("g");
        kb.mov_imm(Reg(0), 1); // #0 def R0
        kb.setp_imm(PredReg(0), CmpOp::Eq, Reg(0), 1); // #1 use R0
        kb.guard(PredReg(0), true);
        kb.mov_imm(Reg(0), 2); // #2 guarded def R0: no kill
        kb.stg(Reg(0), Reg(0), 0); // #3 use R0
        kb.exit(); // #4
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        // R0's pre-guard value can flow through squashed lanes to #3, so it
        // must be live across #2 and the write at #0 is not dead.
        assert!(lv.live_in(2).contains(Reg(0)));
        assert!(lv.defs(2).contains(Reg(0)));
        assert!(lv.kills(2).is_empty());
        assert!(!lv.is_dead_write(0));
    }

    #[test]
    fn selp_kills_destination() {
        let mut kb = KernelBuilder::new("sp");
        kb.mov_imm(Reg(0), 1); // #0 dead: selp overwrites unconditionally
        kb.mov_imm(Reg(1), 2); // #1
        kb.mov_imm(Reg(2), 3); // #2
        kb.setp_imm(PredReg(0), CmpOp::Eq, Reg(1), 2); // #3
        kb.selp(Reg(0), Reg(1), Reg(2), PredReg(0)); // #4 kills R0
        kb.stg(Reg(0), Reg(0), 0); // #5
        kb.exit(); // #6
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        assert!(lv.kills(4).contains(Reg(0)));
        assert!(!lv.live_in(4).contains(Reg(0)));
        assert!(lv.is_dead_write(0));
    }

    #[test]
    fn diamond_branch_live_through_both_arms() {
        let mut kb = KernelBuilder::new("br");
        let join = kb.new_label();
        let else_ = kb.new_label();
        kb.mov_imm(Reg(0), 5); // #0 def R0 (used on both arms)
        kb.setp_imm(PredReg(0), CmpOp::Eq, Reg(0), 5); // #1
        kb.bra_if(PredReg(0), false, else_); // #2
        kb.iadd_imm(Reg(1), Reg(0), 1); // #3 then: use R0
        kb.bra(join); // #4
        kb.place_label(else_);
        kb.iadd_imm(Reg(1), Reg(0), 2); // #5 else: use R0
        kb.place_label(join);
        kb.stg(Reg(1), Reg(1), 0); // #6 use R1
        kb.exit(); // #7
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        // R0 is live into both arms, dead at the join.
        assert!(lv.live_in(3).contains(Reg(0)));
        assert!(lv.live_in(5).contains(Reg(0)));
        assert!(!lv.live_in(6).contains(Reg(0)));
        // R1 live at the join regardless of which arm defined it.
        assert!(lv.live_in(6).contains(Reg(1)));
        assert!(lv.dead_writes().is_empty());
    }

    #[test]
    fn loop_back_edge_keeps_registers_live() {
        let mut kb = KernelBuilder::new("lp");
        let head = kb.new_label();
        kb.mov_imm(Reg(0), 0); // #0 acc
        kb.mov_imm(Reg(1), 8); // #1 bound
        kb.place_label(head);
        kb.iadd_imm(Reg(0), Reg(0), 1); // #2 use+def acc
        kb.setp(PredReg(0), CmpOp::Lt, Reg(0), Reg(1)); // #3 use acc, bound
        kb.bra_if(PredReg(0), true, head); // #4 back edge
        kb.stg(Reg(0), Reg(0), 0); // #5
        kb.exit(); // #6
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        // Fixed point: the bound is live around the whole loop body,
        // including across the back edge at #4.
        for pc in 2..=4 {
            assert!(lv.live_in(pc).contains(Reg(1)), "R1 live at #{pc}");
            assert!(lv.live_in(pc).contains(Reg(0)), "R0 live at #{pc}");
        }
        assert!(!lv.live_out(5).contains(Reg(0)));
        assert!(lv.dead_writes().is_empty());
        // Both registers are allocated and mostly live.
        assert!(lv.live_slot_fraction() > 0.5);
        let ranges = lv.live_ranges();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[1].reg, Reg(1));
        assert!(ranges[1].live_points >= 3);
    }

    #[test]
    fn read_before_write_is_live_at_entry() {
        let mut kb = KernelBuilder::new("rbw");
        kb.iadd_imm(Reg(1), Reg(0), 1); // #0 reads R0 (never written: reads 0)
        kb.stg(Reg(1), Reg(1), 0); // #1
        kb.exit(); // #2
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        assert!(lv.live_at_entry().contains(Reg(0)));
        assert!(!lv.live_at_entry().contains(Reg(1)));
    }

    #[test]
    fn shfl_source_reported_cross_lane() {
        let mut kb = KernelBuilder::new("sh");
        kb.mov_imm(Reg(0), 1);
        kb.mov_imm(Reg(1), 0);
        kb.shfl(Reg(2), Reg(0), Reg(1));
        kb.stg(Reg(2), Reg(2), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let lv = Liveness::compute(&k);
        assert!(lv.cross_lane_regs().contains(Reg(0)));
        assert!(!lv.cross_lane_regs().contains(Reg(1)));
    }
}
