//! Architected registers, predicate registers, and special (read-only)
//! registers.
//!
//! The simulated GPU follows the paper's Kepler-like configuration: each
//! thread may be allocated at most [`MAX_ARCH_REGS`] (63) general-purpose
//! registers — the paper sizes its per-SM profiling counter array to 63
//! two-byte counters for exactly this reason (§III-B).

use std::fmt;

/// Maximum number of architected general-purpose registers per thread.
///
/// Matches the paper's simulated GPU ("each thread can be allocated at most
/// 63 registers", §III-B) and real Kepler GK110 hardware (255 for later
/// chips, 63 for the compute-capability-3.0 parts the paper models).
pub const MAX_ARCH_REGS: usize = 63;

/// Number of predicate registers per thread.
pub const NUM_PRED_REGS: usize = 4;

/// An architected general-purpose register, `R0..R62`.
///
/// Register indices above [`MAX_ARCH_REGS`] are rejected by
/// [`crate::KernelBuilder::build`]; the newtype itself is deliberately cheap
/// to construct so kernel-building code stays readable.
///
/// # Example
///
/// ```rust
/// use prf_isa::Reg;
/// let r = Reg(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "R7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index as a `usize`, convenient for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this register is a legal architected register.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < MAX_ARCH_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

/// A predicate register, `P0..P3`, written by `SETP` and read by predicated
/// instructions.
///
/// Predicate registers live outside the main register file in real GPUs and
/// in this model; they do not contribute to the register-file access counts
/// that the pilot-warp profiler collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(pub u8);

impl PredReg {
    /// Returns the predicate index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this predicate register is in range.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_PRED_REGS
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Read-only special registers exposing thread geometry, as in PTX
/// (`%tid.x`, `%ctaid.x`, …).
///
/// Reads of special registers do not access the main register file and are
/// therefore invisible to register-file profiling, matching real hardware
/// where they are serviced by dedicated logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the CTA (x dimension).
    TidX,
    /// CTA index within the grid (x dimension).
    CtaIdX,
    /// Number of threads per CTA (x dimension).
    NTidX,
    /// Number of CTAs in the grid (x dimension).
    NCtaIdX,
    /// Lane index within the warp (`0..32`).
    LaneId,
    /// Warp index within the CTA.
    WarpId,
    /// Globally unique (flattened) thread index: `ctaid * ntid + tid`.
    GlobalTid,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
            SpecialReg::GlobalTid => "%gtid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(0).to_string(), "R0");
        assert_eq!(Reg(62).to_string(), "R62");
        assert_eq!(Reg(13).index(), 13);
    }

    #[test]
    fn reg_validity_boundary() {
        assert!(Reg(62).is_valid());
        assert!(!Reg(63).is_valid());
        assert!(!Reg(255).is_valid());
    }

    #[test]
    fn pred_validity_boundary() {
        assert!(PredReg(3).is_valid());
        assert!(!PredReg(4).is_valid());
    }

    #[test]
    fn reg_from_u8() {
        let r: Reg = 9u8.into();
        assert_eq!(r, Reg(9));
    }

    #[test]
    fn reg_ordering_follows_index() {
        assert!(Reg(3) < Reg(10));
        let mut v = vec![Reg(5), Reg(1), Reg(3)];
        v.sort();
        assert_eq!(v, vec![Reg(1), Reg(3), Reg(5)]);
    }

    #[test]
    fn special_reg_display() {
        assert_eq!(SpecialReg::TidX.to_string(), "%tid.x");
        assert_eq!(SpecialReg::GlobalTid.to_string(), "%gtid");
    }
}
