//! A textual assembler for the PTX-like ISA.
//!
//! [`Kernel`] already renders to a readable text form via `Display`; this
//! module provides the inverse: parse an assembly listing back into a
//! validated [`Kernel`]. Useful for writing test kernels and examples as
//! text, and for round-tripping kernels through files.
//!
//! # Syntax
//!
//! ```text
//! .kernel vecadd
//!   mov       R0, %gtid
//!   iadd      R1, R0, #0x100      ; immediates take a leading '#'
//!   ldg       R2, [R1]
//!   ldg       R3, [R1 + 4]
//!   fadd      R2, R2, R3
//! loop:                            ; labels end with ':'
//!   isub      R4, R4, #1
//!   setp.gt   P0, R4, #0
//!   @P0 bra   loop                 ; guards: @P0 / @!P0
//!   stg       [R1], R2
//!   exit
//! ```
//!
//! * registers: `R0`–`R62`; predicates `P0`–`P3`
//! * specials: `%tid`, `%ctaid`, `%ntid`, `%nctaid`, `%laneid`,
//!   `%warpid`, `%gtid`
//! * immediates: `#123`, `#0x7f`, or `#1.5f` for f32 bit patterns
//! * memory operands: `[Raddr]` or `[Raddr + byteoffset]`
//! * comments: `;` or `//` to end of line

use std::fmt;

use crate::instr::{Dst, Instruction, Operand, PredGuard};
use crate::kernel::{Kernel, KernelBuilder, KernelError};
use crate::op::{CmpOp, Opcode};
use crate::reg::{PredReg, Reg, SpecialReg};

/// A parse failure, with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<KernelError> for ParseError {
    fn from(e: KernelError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let rest = tok
        .strip_prefix('R')
        .or_else(|| tok.strip_prefix('r'))
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register index in `{tok}`")))?;
    Ok(Reg(idx))
}

fn parse_pred(tok: &str, line: usize) -> Result<PredReg, ParseError> {
    let rest = tok
        .strip_prefix('P')
        .or_else(|| tok.strip_prefix('p'))
        .ok_or_else(|| err(line, format!("expected predicate, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad predicate index in `{tok}`")))?;
    Ok(PredReg(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<u32, ParseError> {
    let body = tok
        .strip_prefix('#')
        .ok_or_else(|| err(line, format!("expected immediate, got `{tok}`")))?;
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex immediate `{tok}`")));
    }
    if let Some(f) = body.strip_suffix('f') {
        let v: f32 = f
            .parse()
            .map_err(|_| err(line, format!("bad float immediate `{tok}`")))?;
        return Ok(v.to_bits());
    }
    if let Some(neg) = body.strip_prefix('-') {
        let v: i64 = neg
            .parse::<i64>()
            .map(|v| -v)
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
        return Ok(v as i32 as u32);
    }
    body.parse::<u32>()
        .map_err(|_| err(line, format!("bad immediate `{tok}`")))
}

fn parse_special(tok: &str, line: usize) -> Result<SpecialReg, ParseError> {
    let s = match tok {
        "%tid" | "%tid.x" => SpecialReg::TidX,
        "%ctaid" | "%ctaid.x" => SpecialReg::CtaIdX,
        "%ntid" | "%ntid.x" => SpecialReg::NTidX,
        "%nctaid" | "%nctaid.x" => SpecialReg::NCtaIdX,
        "%laneid" => SpecialReg::LaneId,
        "%warpid" => SpecialReg::WarpId,
        "%gtid" => SpecialReg::GlobalTid,
        _ => return Err(err(line, format!("unknown special register `{tok}`"))),
    };
    Ok(s)
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if tok.starts_with('#') {
        Ok(Operand::Imm(parse_imm(tok, line)?))
    } else if tok.starts_with('%') {
        Ok(Operand::Special(parse_special(tok, line)?))
    } else {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    }
}

/// `[Raddr]` or `[Raddr + off]` → (addr reg, byte offset in words).
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, u32), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [Rn] or [Rn + off], got `{tok}`")))?;
    let parts: Vec<&str> = inner.split('+').map(str::trim).collect();
    let reg = parse_reg(parts[0], line)?;
    let off = match parts.len() {
        1 => 0,
        2 => parts[1]
            .parse::<u32>()
            .map_err(|_| err(line, format!("bad offset in `{tok}`")))?,
        _ => return Err(err(line, format!("malformed memory operand `{tok}`"))),
    };
    Ok((reg, off))
}

fn parse_cmp(suffix: &str, line: usize) -> Result<CmpOp, ParseError> {
    Ok(match suffix {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        "ult" => CmpOp::Ult,
        "uge" => CmpOp::Uge,
        other => return Err(err(line, format!("unknown setp condition `.{other}`"))),
    })
}

/// Parses one assembly listing into a validated kernel.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors, and wraps
/// [`KernelError`] (line 0) when the assembled kernel fails validation.
///
/// # Example
///
/// ```rust
/// let src = r"
///     .kernel double_it
///     mov   R0, %gtid
///     ldg   R1, [R0]
///     iadd  R1, R1, R1
///     stg   [R0], R1
///     exit
/// ";
/// let k = prf_isa::asm::parse_kernel(src).unwrap();
/// assert_eq!(k.name(), "double_it");
/// assert_eq!(k.len(), 5);
/// ```
pub fn parse_kernel(source: &str) -> Result<Kernel, ParseError> {
    let mut kb: Option<KernelBuilder> = None;
    let mut labels: std::collections::HashMap<String, crate::kernel::Label> =
        std::collections::HashMap::new();

    // Collect (lineno, tokens) per instruction line.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("");
        let text = text.split("//").next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Directive.
        if let Some(rest) = text.strip_prefix(".kernel") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(line, ".kernel needs a name"));
            }
            if kb.is_some() {
                return Err(err(line, "only one .kernel per listing"));
            }
            kb = Some(KernelBuilder::new(name));
            continue;
        }
        let kb = kb
            .as_mut()
            .ok_or_else(|| err(line, "code before .kernel directive"))?;

        // Label definition.
        if let Some(name) = text.strip_suffix(':') {
            let name = name.trim().to_string();
            let label = *labels.entry(name).or_insert_with(|| kb.new_label());
            kb.place_label(label);
            continue;
        }

        // Optional guard, then mnemonic, then a comma-separated operand
        // list (commas, not whitespace, so `[R0 + 16]` stays one token).
        let mut rest = text;
        let mut guard: Option<PredGuard> = None;
        if rest.starts_with('@') {
            let (g, tail) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line, "guard with no instruction"))?;
            let (expected, body) = if let Some(b) = g.strip_prefix("@!") {
                (false, b)
            } else {
                (true, &g[1..])
            };
            guard = Some(PredGuard {
                pred: parse_pred(body, line)?,
                expected,
            });
            rest = tail.trim_start();
        }
        let (mnemonic, operand_text) = match rest.split_once(char::is_whitespace) {
            Some((m, t)) => (m.to_ascii_lowercase(), t.trim()),
            None => (rest.to_ascii_lowercase(), ""),
        };
        let ops: Vec<String> = if operand_text.is_empty() {
            Vec::new()
        } else {
            operand_text
                .split(',')
                .map(|t| t.trim().to_string())
                .collect()
        };
        let ops = &ops;

        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let instr: Instruction = match mnemonic.as_str() {
            "mov" => {
                need(2)?;
                Instruction::new(Opcode::Mov)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?])
            }
            "iadd" | "isub" | "imul" | "imin" | "imax" | "and" | "or" | "xor" | "shl" | "shr"
            | "fadd" | "fmul" => {
                need(3)?;
                let op = match mnemonic.as_str() {
                    "iadd" => Opcode::IAdd,
                    "isub" => Opcode::ISub,
                    "imul" => Opcode::IMul,
                    "imin" => Opcode::IMin,
                    "imax" => Opcode::IMax,
                    "and" => Opcode::IAnd,
                    "or" => Opcode::IOr,
                    "xor" => Opcode::IXor,
                    "shl" => Opcode::IShl,
                    "shr" => Opcode::IShr,
                    "fadd" => Opcode::FAdd,
                    _ => Opcode::FMul,
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            "imad" | "ffma" => {
                need(4)?;
                let op = if mnemonic == "imad" {
                    Opcode::IMad
                } else {
                    Opcode::FFma
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[
                        parse_operand(&ops[1], line)?,
                        parse_operand(&ops[2], line)?,
                        parse_operand(&ops[3], line)?,
                    ])
            }
            "frcp" | "fsqrt" | "flog2" | "fexp2" => {
                need(2)?;
                let op = match mnemonic.as_str() {
                    "frcp" => Opcode::FRcp,
                    "fsqrt" => Opcode::FSqrt,
                    "flog2" => Opcode::FLog2,
                    _ => Opcode::FExp2,
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?])
            }
            "shfl" => {
                need(3)?;
                Instruction::new(Opcode::Shfl)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            "selp" => {
                need(4)?;
                Instruction::new(Opcode::Selp)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
                    .with_guard(PredGuard {
                        pred: parse_pred(&ops[3], line)?,
                        expected: true,
                    })
            }
            "ldg" | "lds" => {
                need(2)?;
                let (addr, off) = parse_mem(&ops[1], line)?;
                let opcode = if mnemonic == "ldg" {
                    Opcode::Ldg
                } else {
                    Opcode::Lds
                };
                let mut i = Instruction::new(opcode)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[Operand::Reg(addr)]);
                i.mem_offset = off;
                i
            }
            "stg" | "sts" => {
                need(2)?;
                let (addr, off) = parse_mem(&ops[0], line)?;
                let opcode = if mnemonic == "stg" {
                    Opcode::Stg
                } else {
                    Opcode::Sts
                };
                let mut i = Instruction::new(opcode)
                    .with_srcs(&[Operand::Reg(addr), Operand::Reg(parse_reg(&ops[1], line)?)]);
                i.mem_offset = off;
                i
            }
            "bra" => {
                need(1)?;
                let label = *labels
                    .entry(ops[0].clone())
                    .or_insert_with(|| kb.new_label());
                if let Some(g) = guard.take() {
                    kb.guard(g.pred, g.expected);
                }
                kb.bra(label);
                continue;
            }
            "bar" | "bar.sync" => {
                need(0)?;
                Instruction::new(Opcode::Bar)
            }
            "exit" => {
                need(0)?;
                Instruction::new(Opcode::Exit)
            }
            "nop" => {
                need(0)?;
                Instruction::new(Opcode::Nop)
            }
            m if m.starts_with("setp.") => {
                need(3)?;
                let cmp = parse_cmp(&m[5..], line)?;
                Instruction::new(Opcode::Setp(cmp))
                    .with_dst(Dst::Pred(parse_pred(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        let instr = match guard {
            Some(g) => instr.with_guard(g),
            None => instr,
        };
        kb.push(instr);
    }

    let kb = kb.ok_or_else(|| err(0, "no .kernel directive found"))?;
    Ok(kb.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_kernel() {
        let k = parse_kernel(
            r"
            .kernel add_one
            mov  R0, %gtid
            iadd R1, R0, #1
            stg  [R0], R1
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.name(), "add_one");
        assert_eq!(k.len(), 4);
        assert_eq!(k.regs_per_thread(), 2);
    }

    #[test]
    fn parses_loop_with_label_and_guard() {
        let k = parse_kernel(
            r"
            .kernel count
            mov R0, #0
        top:
            iadd    R0, R0, #1
            setp.lt P0, R0, #10
            @P0 bra top
            exit
        ",
        )
        .unwrap();
        // bra at pc 3 targets pc 1.
        assert_eq!(k.fetch(3).target, Some(1));
        assert!(k.fetch(3).guard.is_some());
    }

    #[test]
    fn parses_forward_label() {
        let k = parse_kernel(
            r"
            .kernel fwd
            setp.ge P1, R0, #5
            @!P1 bra done
            mov R1, #1
        done:
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(1).target, Some(3));
        let g = k.fetch(1).guard.unwrap();
        assert!(!g.expected);
        assert_eq!(g.pred, PredReg(1));
    }

    #[test]
    fn parses_memory_offsets_and_shared() {
        let k = parse_kernel(
            r"
            .kernel m
            ldg R1, [R0 + 16]
            sts [R1], R0
            lds R2, [R1 + 4]
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(0).mem_offset, 16);
        assert_eq!(k.fetch(0).opcode, Opcode::Ldg);
        assert_eq!(k.fetch(1).opcode, Opcode::Sts);
        assert_eq!(k.fetch(2).mem_offset, 4);
    }

    #[test]
    fn parses_float_and_hex_immediates() {
        let k = parse_kernel(
            r"
            .kernel f
            mov R0, #1.5f
            mov R1, #0xff
            mov R2, #-3
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(0).srcs[0], Some(Operand::Imm(1.5f32.to_bits())));
        assert_eq!(k.fetch(1).srcs[0], Some(Operand::Imm(255)));
        assert_eq!(k.fetch(2).srcs[0], Some(Operand::Imm(-3i32 as u32)));
    }

    #[test]
    fn roundtrips_through_display() {
        // parse -> Display -> spot-check the rendering is stable.
        let k = parse_kernel(
            r"
            .kernel rt
            mov     R0, %tid
            imad    R1, R0, R0, R1
            setp.ne P0, R1, #0
            exit
        ",
        )
        .unwrap();
        let text = k.to_string();
        assert!(text.contains("imad R1, R0, R0, R1"));
        assert!(text.contains("setp.ne P0"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_kernel(
            r"
            .kernel bad
            mov R0, #1
            frob R1, R2
            exit
        ",
        )
        .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frob"));
    }

    #[test]
    fn rejects_code_before_directive() {
        let e = parse_kernel("mov R0, #1").unwrap_err();
        assert!(e.message.contains("before .kernel"));
    }

    #[test]
    fn rejects_wrong_operand_count() {
        let e = parse_kernel(
            r"
            .kernel bad
            iadd R0, R1
            exit
        ",
        )
        .unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn validation_errors_propagate() {
        let e = parse_kernel(
            r"
            .kernel noexit
            mov R0, #1
        ",
        )
        .unwrap_err();
        assert!(e.message.contains("exit"));
    }

    #[test]
    fn parsed_kernel_executes_identically_to_builder_kernel() {
        // The same program via builder and via assembler produce identical
        // instruction streams.
        let parsed = parse_kernel(
            r"
            .kernel twin
            mov  R0, %gtid
            iadd R1, R0, #5
            stg  [R0], R1
            exit
        ",
        )
        .unwrap();
        let mut kb = KernelBuilder::new("twin");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.iadd_imm(Reg(1), Reg(0), 5);
        kb.stg(Reg(0), Reg(1), 0);
        kb.exit();
        let built = kb.build().unwrap();
        assert_eq!(parsed.instructions(), built.instructions());
    }
}
