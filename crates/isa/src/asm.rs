//! A textual assembler for the PTX-like ISA.
//!
//! [`Kernel`] already renders to a readable text form via `Display`; this
//! module provides the inverse: parse an assembly listing back into a
//! validated [`Kernel`]. Useful for writing test kernels and examples as
//! text, and for round-tripping kernels through files.
//!
//! # Syntax
//!
//! ```text
//! .kernel vecadd
//!   mov       R0, %gtid
//!   iadd      R1, R0, #0x100      ; immediates take a leading '#'
//!   ldg       R2, [R1]
//!   ldg       R3, [R1 + 4]
//!   fadd      R2, R2, R3
//! loop:                            ; labels end with ':'
//!   isub      R4, R4, #1
//!   setp.gt   P0, R4, #0
//!   @P0 bra   loop                 ; guards: @P0 / @!P0
//!   stg       [R1], R2
//!   exit
//! ```
//!
//! * registers: `R0`–`R62`; predicates `P0`–`P3`
//! * specials: `%tid`, `%ctaid`, `%ntid`, `%nctaid`, `%laneid`,
//!   `%warpid`, `%gtid`
//! * immediates: `#123`, `#0x7f`, or `#1.5f` for f32 bit patterns
//! * memory operands: `[Raddr]` or `[Raddr + byteoffset]`
//! * comments: `;` or `//` to end of line
//!
//! The parser also accepts the dialect that [`Kernel`]'s `Display`
//! emits, so `parse_kernel(&k.to_string())` round-trips bit-identically:
//!
//! * a `(regs=N)` suffix on the `.kernel` directive (ignored; the
//!   register count is recomputed),
//! * a leading `#<pc>` marker before each instruction (ignored),
//! * PTX-style mnemonics `ld.global` / `st.global` / `ld.shared` /
//!   `st.shared` for `ldg` / `stg` / `lds` / `sts`,
//! * bare hex or decimal immediates (`0x1f`) without the `#` sigil,
//! * absolute branch targets `bra -> #7` in place of a label, and
//! * `selp` written with its selector as a guard prefix
//!   (`@P0 selp R1, R2, R3`), including the negated `@!P0` form.

use std::fmt;

use crate::instr::{Dst, Instruction, Operand, PredGuard};
use crate::kernel::{Kernel, KernelBuilder, KernelError};
use crate::op::{CmpOp, Opcode};
use crate::reg::{PredReg, Reg, SpecialReg};

/// A parse failure, with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let rest = tok
        .strip_prefix('R')
        .or_else(|| tok.strip_prefix('r'))
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register index in `{tok}`")))?;
    // Range-check here so the error carries this line, not the
    // provenance-free `KernelError` the builder would raise later.
    let r = Reg(idx);
    if !r.is_valid() {
        return Err(err(line, KernelError::RegisterOutOfRange(r).to_string()));
    }
    Ok(r)
}

fn parse_pred(tok: &str, line: usize) -> Result<PredReg, ParseError> {
    let rest = tok
        .strip_prefix('P')
        .or_else(|| tok.strip_prefix('p'))
        .ok_or_else(|| err(line, format!("expected predicate, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad predicate index in `{tok}`")))?;
    let p = PredReg(idx);
    if !p.is_valid() {
        return Err(err(line, KernelError::PredicateOutOfRange(p).to_string()));
    }
    Ok(p)
}

fn parse_imm(tok: &str, line: usize) -> Result<u32, ParseError> {
    // The `#` sigil is optional so that `Display`'s bare-hex immediate
    // rendering (`0x1f`) parses back.
    let body = tok.strip_prefix('#').unwrap_or(tok);
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex immediate `{tok}`")));
    }
    if let Some(f) = body.strip_suffix('f') {
        let v: f32 = f
            .parse()
            .map_err(|_| err(line, format!("bad float immediate `{tok}`")))?;
        return Ok(v.to_bits());
    }
    if let Some(neg) = body.strip_prefix('-') {
        let v: i64 = neg
            .parse::<i64>()
            .map(|v| -v)
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
        return Ok(v as i32 as u32);
    }
    body.parse::<u32>()
        .map_err(|_| err(line, format!("bad immediate `{tok}`")))
}

fn parse_special(tok: &str, line: usize) -> Result<SpecialReg, ParseError> {
    let s = match tok {
        "%tid" | "%tid.x" => SpecialReg::TidX,
        "%ctaid" | "%ctaid.x" => SpecialReg::CtaIdX,
        "%ntid" | "%ntid.x" => SpecialReg::NTidX,
        "%nctaid" | "%nctaid.x" => SpecialReg::NCtaIdX,
        "%laneid" => SpecialReg::LaneId,
        "%warpid" => SpecialReg::WarpId,
        "%gtid" => SpecialReg::GlobalTid,
        _ => return Err(err(line, format!("unknown special register `{tok}`"))),
    };
    Ok(s)
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if tok.starts_with('#') || tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        Ok(Operand::Imm(parse_imm(tok, line)?))
    } else if tok.starts_with('%') {
        Ok(Operand::Special(parse_special(tok, line)?))
    } else {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    }
}

/// `[Raddr]` or `[Raddr + off]` → (addr reg, byte offset in words).
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, u32), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [Rn] or [Rn + off], got `{tok}`")))?;
    let parts: Vec<&str> = inner.split('+').map(str::trim).collect();
    let reg = parse_reg(parts[0], line)?;
    let off = match parts.len() {
        1 => 0,
        2 => parts[1]
            .parse::<u32>()
            .map_err(|_| err(line, format!("bad offset in `{tok}`")))?,
        _ => return Err(err(line, format!("malformed memory operand `{tok}`"))),
    };
    Ok((reg, off))
}

fn parse_cmp(suffix: &str, line: usize) -> Result<CmpOp, ParseError> {
    Ok(match suffix {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        "ult" => CmpOp::Ult,
        "uge" => CmpOp::Uge,
        other => return Err(err(line, format!("unknown setp condition `.{other}`"))),
    })
}

/// Parses one assembly listing into a validated kernel.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors. When the assembled kernel
/// fails builder validation ([`KernelError`]), the error is mapped back
/// to the source line of the offending instruction — the branch whose
/// label was never placed, the instruction whose target is out of range —
/// or to the last line for whole-listing failures (empty, no `exit`).
///
/// # Example
///
/// ```rust
/// let src = r"
///     .kernel double_it
///     mov   R0, %gtid
///     ldg   R1, [R0]
///     iadd  R1, R1, R1
///     stg   [R0], R1
///     exit
/// ";
/// let k = prf_isa::asm::parse_kernel(src).unwrap();
/// assert_eq!(k.name(), "double_it");
/// assert_eq!(k.len(), 5);
/// ```
pub fn parse_kernel(source: &str) -> Result<Kernel, ParseError> {
    let mut kb: Option<KernelBuilder> = None;
    let mut labels: std::collections::HashMap<String, crate::kernel::Label> =
        std::collections::HashMap::new();
    // Source provenance for errors the builder raises after parsing:
    // the source line of each pushed instruction (indexed by pc), and
    // the line that first referenced each label (keyed by label id).
    let mut pc_lines: Vec<usize> = Vec::new();
    let mut label_ref_lines: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut last_line = 0usize;

    // Collect (lineno, tokens) per instruction line.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        last_line = line;
        let text = raw.split(';').next().unwrap_or("");
        let mut text = text.split("//").next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Directive. A `(regs=N)` suffix (emitted by `Kernel::Display`)
        // is accepted and ignored: the count is recomputed on build.
        if let Some(rest) = text.strip_prefix(".kernel") {
            let mut name = rest.trim();
            if let Some(idx) = name.find("(regs=") {
                name = name[..idx].trim();
            }
            if name.is_empty() {
                return Err(err(line, ".kernel needs a name"));
            }
            if kb.is_some() {
                return Err(err(line, "only one .kernel per listing"));
            }
            kb = Some(KernelBuilder::new(name));
            continue;
        }
        let kb = kb
            .as_mut()
            .ok_or_else(|| err(line, "code before .kernel directive"))?;

        // `Kernel::Display` prefixes each instruction with a `#<pc>`
        // marker; accept and discard it when it is followed by more text
        // (a lone `#123` stays an error — and an immediate can never
        // start an instruction, so this is unambiguous).
        if let Some(tail) = text.strip_prefix('#') {
            if let Some((num, rest)) = tail.split_once(char::is_whitespace) {
                if !num.is_empty()
                    && num.chars().all(|c| c.is_ascii_digit())
                    && !rest.trim().is_empty()
                {
                    text = rest.trim();
                }
            }
        }

        // Label definition.
        if let Some(name) = text.strip_suffix(':') {
            let name = name.trim().to_string();
            let label = *labels.entry(name).or_insert_with(|| kb.new_label());
            kb.place_label(label);
            continue;
        }

        // Optional guard, then mnemonic, then a comma-separated operand
        // list (commas, not whitespace, so `[R0 + 16]` stays one token).
        let mut rest = text;
        let mut guard: Option<PredGuard> = None;
        if rest.starts_with('@') {
            let (g, tail) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line, "guard with no instruction"))?;
            let (expected, body) = if let Some(b) = g.strip_prefix("@!") {
                (false, b)
            } else {
                (true, &g[1..])
            };
            guard = Some(PredGuard {
                pred: parse_pred(body, line)?,
                expected,
            });
            rest = tail.trim_start();
        }
        let (mnemonic, operand_text) = match rest.split_once(char::is_whitespace) {
            Some((m, t)) => (m.to_ascii_lowercase(), t.trim()),
            None => (rest.to_ascii_lowercase(), ""),
        };
        // PTX-style aliases emitted by `Opcode::Display`.
        let mnemonic = match mnemonic.as_str() {
            "ld.global" => "ldg".to_string(),
            "st.global" => "stg".to_string(),
            "ld.shared" => "lds".to_string(),
            "st.shared" => "sts".to_string(),
            _ => mnemonic,
        };
        let ops: Vec<String> = if operand_text.is_empty() {
            Vec::new()
        } else {
            operand_text
                .split(',')
                .map(|t| t.trim().to_string())
                .collect()
        };
        let ops = &ops;

        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let instr: Instruction = match mnemonic.as_str() {
            "mov" => {
                need(2)?;
                Instruction::new(Opcode::Mov)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?])
            }
            "iadd" | "isub" | "imul" | "imin" | "imax" | "and" | "or" | "xor" | "shl" | "shr"
            | "fadd" | "fmul" => {
                need(3)?;
                let op = match mnemonic.as_str() {
                    "iadd" => Opcode::IAdd,
                    "isub" => Opcode::ISub,
                    "imul" => Opcode::IMul,
                    "imin" => Opcode::IMin,
                    "imax" => Opcode::IMax,
                    "and" => Opcode::IAnd,
                    "or" => Opcode::IOr,
                    "xor" => Opcode::IXor,
                    "shl" => Opcode::IShl,
                    "shr" => Opcode::IShr,
                    "fadd" => Opcode::FAdd,
                    _ => Opcode::FMul,
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            "imad" | "ffma" => {
                need(4)?;
                let op = if mnemonic == "imad" {
                    Opcode::IMad
                } else {
                    Opcode::FFma
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[
                        parse_operand(&ops[1], line)?,
                        parse_operand(&ops[2], line)?,
                        parse_operand(&ops[3], line)?,
                    ])
            }
            "frcp" | "fsqrt" | "flog2" | "fexp2" => {
                need(2)?;
                let op = match mnemonic.as_str() {
                    "frcp" => Opcode::FRcp,
                    "fsqrt" => Opcode::FSqrt,
                    "flog2" => Opcode::FLog2,
                    _ => Opcode::FExp2,
                };
                Instruction::new(op)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?])
            }
            "shfl" => {
                need(3)?;
                Instruction::new(Opcode::Shfl)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            "selp" => {
                // Two spellings: `selp Rd, Ra, Rb, P0` (selector last,
                // always `expected: true`) and the `Display` form
                // `@P0 selp Rd, Ra, Rb` / `@!P0 selp Rd, Ra, Rb`, where
                // the guard prefix *is* the selector.
                if ops.len() == 3 {
                    let g = guard.take().ok_or_else(|| {
                        err(line, "`selp` with 3 operands needs a @P selector prefix")
                    })?;
                    Instruction::new(Opcode::Selp)
                        .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                        .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
                        .with_guard(g)
                } else {
                    need(4)?;
                    Instruction::new(Opcode::Selp)
                        .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                        .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
                        .with_guard(PredGuard {
                            pred: parse_pred(&ops[3], line)?,
                            expected: true,
                        })
                }
            }
            "ldg" | "lds" => {
                need(2)?;
                let (addr, off) = parse_mem(&ops[1], line)?;
                let opcode = if mnemonic == "ldg" {
                    Opcode::Ldg
                } else {
                    Opcode::Lds
                };
                let mut i = Instruction::new(opcode)
                    .with_dst(Dst::Reg(parse_reg(&ops[0], line)?))
                    .with_srcs(&[Operand::Reg(addr)]);
                i.mem_offset = off;
                i
            }
            "stg" | "sts" => {
                need(2)?;
                let (addr, off) = parse_mem(&ops[0], line)?;
                let opcode = if mnemonic == "stg" {
                    Opcode::Stg
                } else {
                    Opcode::Sts
                };
                let mut i = Instruction::new(opcode)
                    .with_srcs(&[Operand::Reg(addr), Operand::Reg(parse_reg(&ops[1], line)?)]);
                i.mem_offset = off;
                i
            }
            "bra" => {
                need(1)?;
                if let Some(tail) = ops[0].strip_prefix("->") {
                    // `Display` form: absolute target `bra -> #7`.
                    let pc_tok = tail.trim();
                    let target: usize = pc_tok
                        .strip_prefix('#')
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line, format!("bad branch target `{}`", ops[0])))?;
                    Instruction::new(Opcode::Bra).with_target(target)
                } else {
                    let label = *labels
                        .entry(ops[0].clone())
                        .or_insert_with(|| kb.new_label());
                    label_ref_lines.entry(label.id()).or_insert(line);
                    if let Some(g) = guard.take() {
                        kb.guard(g.pred, g.expected);
                    }
                    pc_lines.push(line);
                    kb.bra(label);
                    continue;
                }
            }
            "bar" | "bar.sync" => {
                need(0)?;
                Instruction::new(Opcode::Bar)
            }
            "exit" => {
                need(0)?;
                Instruction::new(Opcode::Exit)
            }
            "nop" => {
                need(0)?;
                Instruction::new(Opcode::Nop)
            }
            m if m.starts_with("setp.") => {
                need(3)?;
                let cmp = parse_cmp(&m[5..], line)?;
                Instruction::new(Opcode::Setp(cmp))
                    .with_dst(Dst::Pred(parse_pred(&ops[0], line)?))
                    .with_srcs(&[parse_operand(&ops[1], line)?, parse_operand(&ops[2], line)?])
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        let instr = match guard {
            Some(g) => instr.with_guard(g),
            None => instr,
        };
        pc_lines.push(line);
        kb.push(instr);
    }

    let kb = kb.ok_or_else(|| err(0, "no .kernel directive found"))?;
    kb.build().map_err(|e| {
        // Map builder/validation failures back to source lines: the
        // instruction the error names, the branch that referenced the
        // unbound label, or the end of the listing for whole-kernel
        // conditions (empty, missing exit).
        let line = match &e {
            KernelError::TargetOutOfRange { pc, .. } => {
                pc_lines.get(*pc).copied().unwrap_or(last_line)
            }
            KernelError::UnboundLabel(id) => label_ref_lines.get(id).copied().unwrap_or(last_line),
            _ => last_line,
        };
        err(line, e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_kernel() {
        let k = parse_kernel(
            r"
            .kernel add_one
            mov  R0, %gtid
            iadd R1, R0, #1
            stg  [R0], R1
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.name(), "add_one");
        assert_eq!(k.len(), 4);
        assert_eq!(k.regs_per_thread(), 2);
    }

    #[test]
    fn parses_loop_with_label_and_guard() {
        let k = parse_kernel(
            r"
            .kernel count
            mov R0, #0
        top:
            iadd    R0, R0, #1
            setp.lt P0, R0, #10
            @P0 bra top
            exit
        ",
        )
        .unwrap();
        // bra at pc 3 targets pc 1.
        assert_eq!(k.fetch(3).target, Some(1));
        assert!(k.fetch(3).guard.is_some());
    }

    #[test]
    fn parses_forward_label() {
        let k = parse_kernel(
            r"
            .kernel fwd
            setp.ge P1, R0, #5
            @!P1 bra done
            mov R1, #1
        done:
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(1).target, Some(3));
        let g = k.fetch(1).guard.unwrap();
        assert!(!g.expected);
        assert_eq!(g.pred, PredReg(1));
    }

    #[test]
    fn parses_memory_offsets_and_shared() {
        let k = parse_kernel(
            r"
            .kernel m
            ldg R1, [R0 + 16]
            sts [R1], R0
            lds R2, [R1 + 4]
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(0).mem_offset, 16);
        assert_eq!(k.fetch(0).opcode, Opcode::Ldg);
        assert_eq!(k.fetch(1).opcode, Opcode::Sts);
        assert_eq!(k.fetch(2).mem_offset, 4);
    }

    #[test]
    fn parses_float_and_hex_immediates() {
        let k = parse_kernel(
            r"
            .kernel f
            mov R0, #1.5f
            mov R1, #0xff
            mov R2, #-3
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.fetch(0).srcs[0], Some(Operand::Imm(1.5f32.to_bits())));
        assert_eq!(k.fetch(1).srcs[0], Some(Operand::Imm(255)));
        assert_eq!(k.fetch(2).srcs[0], Some(Operand::Imm(-3i32 as u32)));
    }

    #[test]
    fn roundtrips_through_display() {
        // parse -> Display -> spot-check the rendering is stable.
        let k = parse_kernel(
            r"
            .kernel rt
            mov     R0, %tid
            imad    R1, R0, R0, R1
            setp.ne P0, R1, #0
            exit
        ",
        )
        .unwrap();
        let text = k.to_string();
        assert!(text.contains("imad R1, R0, R0, R1"));
        assert!(text.contains("setp.ne P0"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_kernel(
            r"
            .kernel bad
            mov R0, #1
            frob R1, R2
            exit
        ",
        )
        .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frob"));
    }

    #[test]
    fn rejects_code_before_directive() {
        let e = parse_kernel("mov R0, #1").unwrap_err();
        assert!(e.message.contains("before .kernel"));
    }

    #[test]
    fn rejects_wrong_operand_count() {
        let e = parse_kernel(
            r"
            .kernel bad
            iadd R0, R1
            exit
        ",
        )
        .unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn validation_errors_propagate() {
        let e = parse_kernel(
            r"
            .kernel noexit
            mov R0, #1
        ",
        )
        .unwrap_err();
        assert!(e.message.contains("exit"));
        assert_ne!(e.line, 0, "whole-listing errors point at the last line");
    }

    #[test]
    fn unbound_label_reports_referencing_line() {
        let e = parse_kernel(
            r"
            .kernel dangling
            mov R0, #1
            bra nowhere
            exit
        ",
        )
        .unwrap_err();
        assert!(e.message.contains("never placed"), "got: {}", e.message);
        assert_eq!(e.line, 4, "error must point at the `bra nowhere` line");
    }

    #[test]
    fn register_out_of_range_reports_line() {
        let e = parse_kernel(
            r"
            .kernel hireg
            mov R0, #1
            mov R63, #2
            exit
        ",
        )
        .unwrap_err();
        assert_eq!(e.line, 4, "error must point at the `mov R63` line");
        assert!(e.message.contains("R63"), "got: {}", e.message);
    }

    #[test]
    fn predicate_out_of_range_reports_line() {
        let e = parse_kernel(
            r"
            .kernel hipred
            setp.eq P7, R0, #0
            exit
        ",
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("P7"), "got: {}", e.message);
    }

    #[test]
    fn parses_display_dialect() {
        // Exactly what `Kernel::Display` emits: regs suffix, pc markers,
        // PTX memory mnemonics, bare hex immediates, absolute branch
        // targets, and guard-prefix selp.
        let k = parse_kernel(
            r"
            .kernel disp (regs=4)
              #0    mov R0, %gtid
              #1    setp.lt P0, R0, 0x10
              #2    @!P0 bra -> #6
              #3    ld.global R1, [R0 + 16]
              #4    @P0 selp R2, R1, R0
              #5    st.global [R0], R2
              #6    exit
        ",
        )
        .unwrap();
        assert_eq!(k.name(), "disp");
        assert_eq!(k.len(), 7);
        assert_eq!(k.fetch(2).target, Some(6));
        assert_eq!(k.fetch(3).opcode, Opcode::Ldg);
        assert_eq!(k.fetch(3).mem_offset, 16);
        assert_eq!(k.fetch(4).opcode, Opcode::Selp);
        let sel = k.fetch(4).guard.unwrap();
        assert_eq!(sel.pred, PredReg(0));
        assert!(sel.expected);
        assert_eq!(k.fetch(5).opcode, Opcode::Stg);
        assert_eq!(k.fetch(1).srcs[1], Some(Operand::Imm(0x10)));
    }

    #[test]
    fn display_round_trips_bit_identically() {
        let mut kb = KernelBuilder::new("rt2");
        let top = kb.new_label();
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.ldg(Reg(1), Reg(0), 8);
        kb.place_label(top);
        kb.iadd_imm(Reg(1), Reg(1), 1);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(1), 100);
        kb.bra_if(PredReg(0), true, top);
        kb.selp(Reg(2), Reg(1), Reg(0), PredReg(0));
        kb.stg(Reg(0), Reg(2), 4);
        kb.exit();
        let k = kb.build().unwrap();
        let reparsed = parse_kernel(&k.to_string()).unwrap();
        assert_eq!(reparsed.instructions(), k.instructions());
        assert_eq!(reparsed.regs_per_thread(), k.regs_per_thread());
        assert_eq!(reparsed.name(), k.name());
    }

    #[test]
    fn parsed_kernel_executes_identically_to_builder_kernel() {
        // The same program via builder and via assembler produce identical
        // instruction streams.
        let parsed = parse_kernel(
            r"
            .kernel twin
            mov  R0, %gtid
            iadd R1, R0, #5
            stg  [R0], R1
            exit
        ",
        )
        .unwrap();
        let mut kb = KernelBuilder::new("twin");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.iadd_imm(Reg(1), Reg(0), 5);
        kb.stg(Reg(0), Reg(1), 0);
        kb.exit();
        let built = kb.build().unwrap();
        assert_eq!(parsed.instructions(), built.instructions());
    }
}
