//! Seeded random well-formed-kernel generation for the differential
//! fuzzing harness (`prf-fuzz`).
//!
//! A [`RandomKernelGenerator`] builds kernels that are *well-formed by
//! construction* — they pass [`prf_isa::KernelValidator`], terminate, and
//! are data-race-free — while still exercising the simulator broadly:
//! divergent branches with IPDOM reconvergence, bounded uniform loops,
//! barriers, shared-memory round-trips, warp shuffles, and the whole
//! integer ALU. Three discipline rules make every case a valid
//! differential-testing oracle:
//!
//! 1. **Termination** — loops count a uniform register up to a bounded
//!    trip count, forward branches only skip a few straight-line
//!    instructions, and the kernel ends in an unguarded `Exit`.
//! 2. **Race freedom** — each thread loads only its own input slot
//!    (`mem[gtid]`), writes only its own output slot
//!    (`mem[OUT_BASE + gtid]`), and touches only its own shared-memory
//!    word, so no thread ever observes another thread's global write.
//! 3. **Uniform barriers** — `bar` is emitted only in top-level uniform
//!    control flow, never inside a divergent region, so every warp of a
//!    CTA reaches it.
//!
//! Together these rules mean the per-thread execution trace is a pure
//! function of the kernel and the input image: every scheduler, RF model,
//! and `sm_threads` setting must produce the same instruction count and
//! the same final memory — which is exactly what `prf-fuzz` asserts.
//!
//! Generation is a pure function of `(seed, index)`: the same pair always
//! yields the same kernel, grid, and memory image, so a failing case
//! reported by CI can be replayed locally from just those two numbers.

use prf_isa::{CmpOp, GridConfig, Kernel, KernelBuilder, PredReg, Reg, SpecialReg};

/// First word of the per-thread output region. Inputs live at address 0;
/// a generated grid has at most [`MAX_THREADS`] threads, so the two
/// regions never overlap.
pub const OUT_BASE: u32 = 0x1000;

/// Upper bound on total threads in a generated grid (4 CTAs × 256).
pub const MAX_THREADS: u32 = 1024;

/// Global-memory words a generated case can touch: input slots at
/// `[0, MAX_THREADS)`, output slots at `[OUT_BASE, OUT_BASE + MAX_THREADS)`.
pub const MEM_WORDS: usize = 1 << 13;

/// A generated differential-testing case: a kernel, its launch geometry,
/// and the input image its loads read from.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The well-formed kernel.
    pub kernel: Kernel,
    /// Launch geometry (fits [`MAX_THREADS`]).
    pub grid: GridConfig,
    /// `(base_word_address, words)` blocks to load before launch.
    pub mem_init: Vec<(u32, Vec<u32>)>,
}

impl FuzzCase {
    /// Total threads across the grid.
    pub fn total_threads(&self) -> u32 {
        self.grid.num_ctas * self.grid.threads_per_cta
    }
}

/// A deterministic source of test kernels, indexed so any case can be
/// regenerated in isolation (for replaying a CI failure, or for sharding
/// a fuzz run across processes).
pub trait KernelGenerator {
    /// Generates case `index`. Must be a pure function of the generator's
    /// own configuration and `index`.
    fn generate(&self, index: u64) -> FuzzCase;
}

/// Splitmix64 — a tiny, high-quality, dependency-free PRNG. Statistical
/// perfection doesn't matter here; determinism and speed do.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, index: u64) -> Self {
        // Decorrelate the two inputs so (seed, index) and (seed+1,
        // index-1) don't produce neighbouring streams.
        Rng(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant for fuzzing).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }

    fn word(&mut self) -> u32 {
        self.next() as u32
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// The default generator: seeded, uniform over a mix of straight-line
/// ALU blocks, bounded loops, divergent skips, shuffles, shared-memory
/// round-trips, and barriers. See the module docs for the discipline
/// rules that keep every case race-free and terminating.
#[derive(Debug, Clone, Copy)]
pub struct RandomKernelGenerator {
    /// Base seed; combined with the case index per generation.
    pub seed: u64,
}

// Fixed register roles; the rotating scratch pool starts above these.
const R_GTID: Reg = Reg(0); // global thread id (address of the thread's slots)
const R_TID: Reg = Reg(1); // thread id within the CTA (shared-memory slot)
const R_ACC: Reg = Reg(2); // accumulator, stored to the output slot at the end
const R_LOOP: Reg = Reg(3); // uniform loop counter
const POOL_BASE: u8 = 4;

impl RandomKernelGenerator {
    /// A generator over the given base seed.
    pub fn new(seed: u64) -> Self {
        RandomKernelGenerator { seed }
    }

    /// A random register from the scratch pool (plus the accumulator, so
    /// pool values flow into the observable output).
    fn pool_reg(rng: &mut Rng, regs: u8) -> Reg {
        let span = u64::from(regs - POOL_BASE) + 1;
        match rng.below(span) {
            0 => R_ACC,
            k => Reg(POOL_BASE + (k as u8) - 1),
        }
    }

    /// A random *source* register: any pool register or one of the
    /// always-initialised role registers.
    fn src_reg(rng: &mut Rng, regs: u8) -> Reg {
        match rng.below(3) {
            0 => R_GTID,
            1 => R_TID,
            _ => Self::pool_reg(rng, regs),
        }
    }

    /// Emits one random ALU instruction.
    fn alu(kb: &mut KernelBuilder, rng: &mut Rng, regs: u8) {
        let d = Self::pool_reg(rng, regs);
        let a = Self::src_reg(rng, regs);
        let b = Self::src_reg(rng, regs);
        match rng.below(12) {
            0 => kb.iadd(d, a, b),
            1 => kb.isub(d, a, b),
            2 => kb.imul(d, a, b),
            3 => kb.iand(d, a, b),
            4 => kb.ixor(d, a, b),
            5 => kb.imin(d, a, b),
            6 => kb.imax(d, a, b),
            7 => kb.iadd_imm(d, a, rng.word()),
            8 => kb.imul_imm(d, a, rng.word() | 1),
            9 => kb.ishl_imm(d, a, rng.below(31) as u32),
            10 => kb.ishr_imm(d, a, rng.below(31) as u32),
            _ => kb.imad(d, a, b, Self::src_reg(rng, regs)),
        };
    }

    /// Emits one top-level block (see the module docs for the block mix).
    fn block(kb: &mut KernelBuilder, rng: &mut Rng, regs: u8, threads_per_cta: u32) {
        match rng.below(10) {
            // Straight-line ALU burst — the common case.
            0..=3 => {
                for _ in 0..=rng.below(3) {
                    Self::alu(kb, rng, regs);
                }
            }
            // Warp shuffle: intra-warp, lane index masked by the
            // executor, deterministic under any schedule.
            4 => {
                let d = Self::pool_reg(rng, regs);
                let s = Self::pool_reg(rng, regs);
                let lane = Self::src_reg(rng, regs);
                kb.shfl(d, s, lane);
            }
            // Predicated select (the validator's Selp guard rule is
            // satisfied by the builder helper).
            5 => {
                let p = PredReg(rng.below(4) as u8);
                kb.setp_imm(p, CmpOp::Lt, Self::src_reg(rng, regs), rng.word());
                let d = Self::pool_reg(rng, regs);
                kb.selp(d, Self::src_reg(rng, regs), Self::src_reg(rng, regs), p);
            }
            // Bounded uniform loop: the counter is uniform across the
            // CTA, so the back edge never diverges and the trip count is
            // a hard bound.
            6 => {
                let trip = 1 + rng.below(4) as u32;
                kb.mov_imm(R_LOOP, 0);
                let top = kb.new_label();
                kb.place_label(top);
                for _ in 0..=rng.below(2) {
                    Self::alu(kb, rng, regs);
                }
                kb.iadd_imm(R_LOOP, R_LOOP, 1);
                kb.setp_imm(PredReg(0), CmpOp::Lt, R_LOOP, trip);
                kb.bra_if(PredReg(0), true, top);
            }
            // Divergent forward skip: lanes with tid < k run the body,
            // the rest jump to the reconvergence point. No barrier and
            // no back edge inside, so IPDOM reconvergence is the only
            // machinery it exercises.
            7 => {
                let k = 1 + rng.below(u64::from(threads_per_cta)) as u32;
                let p = PredReg(1 + rng.below(3) as u8);
                kb.setp_imm(p, CmpOp::Lt, R_TID, k);
                let skip = kb.new_label();
                kb.bra_if(p, false, skip);
                for _ in 0..=rng.below(2) {
                    Self::alu(kb, rng, regs);
                }
                kb.place_label(skip);
            }
            // Shared-memory round-trip through the thread's own slot.
            8 => {
                let v = Self::pool_reg(rng, regs);
                kb.sts(R_TID, v, 0);
                kb.lds(Self::pool_reg(rng, regs), R_TID, 0);
            }
            // Barrier in uniform top-level flow.
            _ => {
                kb.bar();
            }
        }
    }
}

impl KernelGenerator for RandomKernelGenerator {
    fn generate(&self, index: u64) -> FuzzCase {
        let mut rng = Rng::new(self.seed, index);
        // Highest register index used: roles + a 2..=10-wide scratch pool.
        let regs = POOL_BASE + 1 + rng.below(9) as u8;
        let threads_per_cta = [32, 64, 96, 128, 192, 256][rng.below(6) as usize];
        let num_ctas = 1 + rng.below(4) as u32;
        let total_threads = num_ctas * threads_per_cta;

        let mut kb = KernelBuilder::new(format!("fuzz_{}_{index}", self.seed));
        kb.mov_special(R_GTID, SpecialReg::GlobalTid);
        kb.mov_special(R_TID, SpecialReg::TidX);
        // Seed the accumulator from the thread's own input slot and the
        // pool from compile-time constants.
        kb.ldg(R_ACC, R_GTID, 0);
        for r in POOL_BASE..=regs {
            kb.mov_imm(Reg(r), rng.word());
        }
        for _ in 0..(2 + rng.below(7)) {
            Self::block(&mut kb, &mut rng, regs, threads_per_cta);
        }
        // Fold a couple of pool registers into the accumulator so block
        // effects are observable in the output image.
        kb.ixor(R_ACC, R_ACC, Self::pool_reg(&mut rng, regs));
        kb.iadd(R_ACC, R_ACC, Self::pool_reg(&mut rng, regs));
        if rng.chance(30) {
            kb.bar();
        }
        kb.stg(R_GTID, R_ACC, OUT_BASE);
        kb.exit();
        let kernel = kb
            .build()
            .expect("generated kernels are well-formed by construction");

        let input: Vec<u32> = (0..total_threads).map(|_| rng.word()).collect();
        FuzzCase {
            kernel,
            grid: GridConfig::new(num_ctas, threads_per_cta),
            mem_init: vec![(0, input)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::{encode_kernel, KernelValidator};

    #[test]
    fn generation_is_deterministic() {
        let g = RandomKernelGenerator::new(42);
        for index in 0..20 {
            let a = g.generate(index);
            let b = g.generate(index);
            assert_eq!(encode_kernel(&a.kernel), encode_kernel(&b.kernel));
            assert_eq!(a.grid, b.grid);
            assert_eq!(a.mem_init, b.mem_init);
        }
    }

    #[test]
    fn generated_kernels_validate_clean() {
        let g = RandomKernelGenerator::new(7);
        let v = KernelValidator::new();
        for index in 0..200 {
            let case = g.generate(index);
            assert_eq!(
                v.validate(&case.kernel),
                Ok(()),
                "case {index}: {:?}",
                case.kernel
            );
            assert!(case.total_threads() <= MAX_THREADS);
            assert!(case.mem_init[0].1.len() as u32 == case.total_threads());
        }
    }

    #[test]
    fn different_indices_differ() {
        let g = RandomKernelGenerator::new(1);
        let a = encode_kernel(&g.generate(0).kernel);
        let b = encode_kernel(&g.generate(1).kernel);
        assert_ne!(a, b, "consecutive cases should not collide");
    }

    #[test]
    fn memory_regions_do_not_overlap() {
        assert!(OUT_BASE >= MAX_THREADS);
        assert!((OUT_BASE + MAX_THREADS) as usize <= MEM_WORDS);
    }
}
