//! The kernel-recipe generator: builds synthetic kernels with controlled
//! register-access structure.
//!
//! Each recipe produces a kernel with:
//!
//! * an exact register count (Table I's "Registers/Thread" column),
//! * a designated *hot* register set used intensively in the main loop —
//!   these become the dynamically most-accessed registers (Fig. 2 skew),
//! * optional *decoy* registers that appear often in straight-line code
//!   that executes once: statically frequent but dynamically cold, which
//!   is what makes compiler-based profiling mispredict on Category-2
//!   workloads (Fig. 4),
//! * optional data-dependent trip counts loaded from memory,
//! * an optional *pilot-variant* path: warp 0 of CTA 0 (the pilot) runs a
//!   different loop over different registers than every other warp —
//!   the Category-3 structure where the pilot's profile misleads,
//! * optional per-iteration memory traffic (streaming, pointer-chasing,
//!   or shared-memory tiles with barriers) that creates the low-compute
//!   phases the adaptive FRF exploits.

use prf_isa::{CmpOp, GridConfig, Kernel, KernelBuilder, PredReg, Reg, SpecialReg};

/// Base word address of the per-thread trip-count array used by
/// data-dependent recipes.
pub const TRIPS_BASE: u32 = 0x400;

/// Base word address of the data arrays kernels stream through.
pub const DATA_BASE: u32 = 0x8000;

/// Base word address where kernels store their outputs.
pub const OUT_BASE: u32 = 0x10_0000;

/// Per-iteration memory behaviour of the main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPattern {
    /// No memory traffic inside the loop (compute-bound).
    None,
    /// `val = mem[addr]; addr += stride` — regular streaming. Requires at
    /// least two operand registers (address walker + loaded value).
    Streaming {
        /// Address stride in words.
        stride: u32,
    },
    /// `ptr = mem[ptr]` — pointer chasing (irregular, BFS/MUM-like).
    /// Requires at least one operand register.
    Chase,
    /// Shared-memory tile: `sts`/`bar`/`lds` per iteration (sgemm-,
    /// stencil-like). Only valid with fixed trip counts.
    SharedTile,
}

/// The Category-3 structure: the pilot warp takes a different path.
#[derive(Debug, Clone)]
pub struct PilotVariant {
    /// Hot registers of the pilot-only path.
    pub pilot_hot: Vec<u8>,
    /// Pilot-path trip count.
    pub pilot_trips: u32,
}

/// A parameterised synthetic kernel.
#[derive(Debug, Clone)]
pub struct KernelRecipe {
    /// Kernel name.
    pub name: &'static str,
    /// Total architected registers per thread (Table I).
    pub regs: u8,
    /// Hot registers: `hot[0]` is the accumulator, `hot[1]` the loop
    /// counter, `hot[2]` the loop bound when trips are data-dependent,
    /// the rest operands. At least 3 required.
    pub hot: Vec<u8>,
    /// Decoy registers (Category 2): statically frequent, dynamically
    /// cold. Empty for other categories.
    pub decoys: Vec<u8>,
    /// Main-loop trip count (ignored per-thread when `data_dependent` is
    /// set, where it becomes the *maximum*).
    pub trips: u32,
    /// Load per-thread trip counts from `TRIPS_BASE + gtid`.
    pub data_dependent: bool,
    /// Per-iteration memory behaviour.
    pub mem: MemPattern,
    /// A tid-dependent divergent branch inside the loop body.
    pub body_divergence: bool,
    /// Category-3 pilot-variant path.
    pub pilot_variant: Option<PilotVariant>,
}

impl KernelRecipe {
    /// A minimal compute recipe (Category-1 shaped).
    pub fn basic(name: &'static str, regs: u8, hot: Vec<u8>, trips: u32) -> Self {
        KernelRecipe {
            name,
            regs,
            hot,
            decoys: Vec::new(),
            trips,
            data_dependent: false,
            mem: MemPattern::None,
            body_divergence: false,
            pilot_variant: None,
        }
    }

    fn check(&self) {
        assert!(
            self.hot.len() >= 3,
            "{}: need at least 3 hot registers",
            self.name
        );
        assert!(self.regs >= 4, "{}: need at least 4 registers", self.name);
        for &r in self.hot.iter().chain(&self.decoys) {
            assert!(
                r < self.regs,
                "{}: register R{r} exceeds budget {}",
                self.name,
                self.regs
            );
        }
        for &d in &self.decoys {
            assert!(
                !self.hot.contains(&d),
                "{}: R{d} is both hot and decoy",
                self.name
            );
        }
        if matches!(self.mem, MemPattern::SharedTile) {
            assert!(
                !self.data_dependent,
                "{}: shared tiles need uniform trips",
                self.name
            );
        }
        let operands = self.hot.len() - 2 - usize::from(self.data_dependent);
        match self.mem {
            MemPattern::Streaming { .. } => {
                assert!(
                    operands >= 2,
                    "{}: streaming needs 2 operand registers",
                    self.name
                )
            }
            MemPattern::Chase => {
                assert!(
                    operands >= 1,
                    "{}: chasing needs 1 operand register",
                    self.name
                )
            }
            _ => {}
        }
        if let Some(pv) = &self.pilot_variant {
            assert!(
                pv.pilot_hot.len() >= 3,
                "{}: pilot path needs 3 hot registers",
                self.name
            );
            for &r in &pv.pilot_hot {
                assert!(
                    r < self.regs,
                    "{}: pilot register R{r} out of budget",
                    self.name
                );
            }
        }
        // The builder needs a gtid register plus at least one scratch
        // outside the designated roles (decoys can double as scratch).
        let roles: usize = self.hot.len()
            + self
                .pilot_variant
                .as_ref()
                .map_or(0, |pv| pv.pilot_hot.len());
        let free = (self.regs as usize).saturating_sub(roles);
        assert!(
            free + self.decoys.len() >= 2,
            "{}: need at least 2 registers outside the hot/pilot roles              (for gtid and scratch); have {} free and {} decoys",
            self.name,
            free.saturating_sub(self.decoys.len().min(free)),
            self.decoys.len()
        );
    }

    /// A scratch register not used for any designated role. When the
    /// register budget is fully claimed by roles (e.g. lavaMD's 6
    /// registers), a decoy is reused: its scratch uses are one-shot, so it
    /// stays dynamically cold.
    fn scratch(&self, avoid: &[u8]) -> Reg {
        for r in 0..self.regs {
            let role = self.hot.contains(&r)
                || self.decoys.contains(&r)
                || avoid.contains(&r)
                || self
                    .pilot_variant
                    .as_ref()
                    .is_some_and(|pv| pv.pilot_hot.contains(&r));
            if !role {
                return Reg(r);
            }
        }
        for &r in self.decoys.iter().rev() {
            if !avoid.contains(&r) {
                return Reg(r);
            }
        }
        panic!("{}: no scratch register available", self.name);
    }

    /// Emits the arithmetic/memory loop body over the given role split.
    /// `div_scratch` must not alias any live role register.
    #[allow(clippy::too_many_arguments)]
    fn emit_loop(
        &self,
        kb: &mut KernelBuilder,
        acc: Reg,
        ctr: Reg,
        bound_imm: Option<u32>,
        bound_reg: Option<Reg>,
        operands: &[Reg],
        mem: MemPattern,
        body_divergence: Option<Reg>,
        warm: &[Reg],
        unroll: u32,
    ) {
        let top = kb.new_label();
        kb.place_label(top);
        for u in 0..unroll.max(1) {
            // Memory first, consumption of the loaded value last: real
            // compilers schedule loads early, and the gap is what lets
            // multi-cycle register files hide their latency.
            let mut consume: Option<(Reg, Reg)> = None;
            match mem {
                MemPattern::None => {}
                MemPattern::Streaming { stride } => {
                    let addr = operands[0];
                    let val = operands[1];
                    kb.ldg(val, addr, 0);
                    kb.iadd_imm(addr, addr, stride);
                    consume = Some((acc, val));
                }
                MemPattern::Chase => {
                    let ptr = operands[0];
                    kb.ldg(ptr, ptr, 0);
                    consume = Some((acc, ptr));
                }
                MemPattern::SharedTile => {
                    let addr = operands[0];
                    let val = *operands.get(1).unwrap_or(&operands[0]);
                    kb.sts(addr, acc, 0);
                    // One barrier per unrolled group (not per iteration):
                    // real tiled kernels amortise synchronisation over a
                    // tile's worth of work.
                    if u == 0 {
                        kb.bar();
                    }
                    kb.lds(val, addr, 1);
                    consume = Some((acc, val));
                }
            }
            // Independent chains per operand interleaved with the
            // accumulator chain: ILP ~ operand count, as in real kernels.
            for (i, &op) in operands.iter().enumerate() {
                if (i + u as usize).is_multiple_of(2) {
                    kb.imad(acc, op, op, acc);
                } else {
                    kb.imad(op, op, op, op);
                }
            }
            // Warm-tier touch: one multiply-add reading two mid-tier
            // registers per iteration. Real kernels touch well over six
            // registers per loop iteration; this keeps the per-iteration
            // footprint realistic (it is what limits an RFC's hit rate)
            // and provides the register access mid-tier of Fig. 2.
            if warm.len() >= 2 {
                kb.imad(acc, warm[0], warm[1], acc);
            }
            if warm.len() >= 3 {
                // An independent warm chain (extra ILP, like real code).
                kb.imad(warm[2], warm[0], warm[1], warm[2]);
            }
            if let Some((dst, val)) = consume {
                kb.iadd(dst, dst, val);
            }
            if let Some(b) = bound_reg {
                // The loop bound participates in the computation (as real
                // bounds do in address math), keeping it genuinely hot.
                kb.imad(acc, b, b, acc);
            }
            if operands.is_empty() {
                // Degenerate hot set: keep the accumulator and bound busy.
                let src = bound_reg.unwrap_or(ctr);
                kb.imad(acc, src, src, acc);
            }
        }
        if let Some(s) = body_divergence {
            // Lanes with odd accumulator skip one extra op — a real
            // data-dependent divergent diamond.
            let skip = kb.new_label();
            kb.iand_imm(s, acc, 1);
            kb.setp_imm(PredReg(1), CmpOp::Eq, s, 0);
            kb.bra_if(PredReg(1), false, skip);
            kb.iadd_imm(acc, acc, 3);
            kb.place_label(skip);
        }
        kb.iadd_imm(ctr, ctr, 1);
        match (bound_reg, bound_imm) {
            (Some(b), _) => kb.setp(PredReg(0), CmpOp::Lt, ctr, b),
            (None, Some(n)) => kb.setp_imm(PredReg(0), CmpOp::Lt, ctr, n),
            (None, None) => unreachable!("loop needs a bound"),
        };
        kb.bra_if(PredReg(0), true, top);
    }

    /// Builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the recipe is internally inconsistent (see the field
    /// docs); never produces an invalid kernel otherwise.
    pub fn build(&self) -> Kernel {
        self.check();
        let mut kb = KernelBuilder::new(self.name);

        let gtid = self.scratch(&[]);
        // --- Preamble: gtid, then touch every register once so the
        // high-water mark equals the Table I register count.
        kb.mov_special(gtid, SpecialReg::GlobalTid);
        for r in 0..self.regs {
            if Reg(r) == gtid {
                continue;
            }
            kb.mov_imm(Reg(r), u32::from(r) + 1);
        }

        // --- Decoy block (Category 2): statically dense, executes once.
        if !self.decoys.is_empty() {
            for round in 0..3 {
                for i in 0..self.decoys.len() {
                    let d = Reg(self.decoys[i]);
                    let e = Reg(self.decoys[(i + 1) % self.decoys.len()]);
                    if round % 2 == 0 {
                        kb.iadd(d, d, e);
                    } else {
                        kb.imad(d, e, e, d);
                    }
                }
            }
        }

        // --- Role split.
        let acc = Reg(self.hot[0]);
        let ctr = Reg(self.hot[1]);
        let (bound_reg, op_start) = if self.data_dependent {
            (Some(Reg(self.hot[2])), 3)
        } else {
            (None, 2)
        };
        let operands: Vec<Reg> = self.hot[op_start..].iter().map(|&r| Reg(r)).collect();

        // --- Loop setup.
        kb.mov_imm(ctr, 0);
        if let Some(b) = bound_reg {
            // Per-thread trip count from memory (clamped at build of the
            // init data, not here).
            kb.iadd_imm(self.scratch(&[gtid.0]), gtid, TRIPS_BASE);
            kb.ldg(b, self.scratch(&[gtid.0]), 0);
        }
        match self.mem {
            MemPattern::Streaming { .. } => {
                // Seed the address walker with a *warp-private* region:
                // addr = DATA_BASE + gtid + (gtid >> 5) << 12. Private
                // regions keep each warp's L1 behaviour independent of
                // other warps' timing — shared frontier lines make hit
                // rates chaotically order-sensitive.
                let addr = operands[0];
                kb.ishr_imm(addr, gtid, 5);
                kb.ishl_imm(addr, addr, 12);
                kb.iadd(addr, addr, gtid);
                kb.iadd_imm(addr, addr, DATA_BASE);
            }
            MemPattern::Chase => {
                // Seed the pointer from gtid; chase targets are seeded
                // pseudo-random, which is self-averaging.
                kb.iadd_imm(operands[0], gtid, DATA_BASE);
            }
            MemPattern::SharedTile => {
                // Per-thread shared-memory slot.
                kb.iand_imm(operands[0], gtid, 1023);
            }
            MemPattern::None => {}
        }

        // --- Warm-register pair: two free registers (descending index so
        // static-count ties resolve toward the designated hot registers),
        // read once per main-loop iteration.
        let mut free: Vec<u8> = (0..self.regs)
            .filter(|&r| {
                r != gtid.0
                    && !self.hot.contains(&r)
                    && !self.decoys.contains(&r)
                    && !self
                        .pilot_variant
                        .as_ref()
                        .is_some_and(|pv| pv.pilot_hot.contains(&r))
            })
            .collect();
        free.sort_unstable_by(|a, b| b.cmp(a));
        // Keep at least one low-index free register for scratch duty.
        let warm: Vec<Reg> = if free.len() >= 3 {
            free[..(free.len() - 1).min(3)]
                .iter()
                .map(|&r| Reg(r))
                .collect()
        } else {
            Vec::new()
        };

        // --- Pilot-variant split (Category 3).
        if let Some(pv) = &self.pilot_variant {
            // is_pilot = (ctaid == 0) && (warpid == 0), computed with one
            // scratch register via a predicated second compare.
            let s = self.scratch(&[gtid.0]);
            kb.mov_special(s, SpecialReg::CtaIdX);
            kb.setp_imm(PredReg(2), CmpOp::Eq, s, 0);
            kb.mov_special(s, SpecialReg::WarpId);
            kb.guard(PredReg(2), true);
            kb.setp_imm(PredReg(2), CmpOp::Eq, s, 0);
            let path_b = kb.new_label();
            let done = kb.new_label();
            kb.bra_if(PredReg(2), false, path_b);
            // Path A: the pilot warp only.
            let p_acc = Reg(pv.pilot_hot[0]);
            let p_ctr = Reg(pv.pilot_hot[1]);
            let p_ops: Vec<Reg> = pv.pilot_hot[2..].iter().map(|&r| Reg(r)).collect();
            kb.mov_imm(p_ctr, 0);
            self.emit_loop(
                &mut kb,
                p_acc,
                p_ctr,
                Some(pv.pilot_trips),
                None,
                &p_ops,
                MemPattern::None,
                None,
                &warm,
                1,
            );
            kb.mov(acc, p_acc);
            kb.bra(done);
            kb.place_label(path_b);
            // Path B: everyone else. Unroll 2 so its registers dominate
            // the static counts (what the compiler sees).
            let div = self.body_divergence.then(|| self.scratch(&[gtid.0, s.0]));
            self.emit_loop(
                &mut kb,
                acc,
                ctr,
                Some(self.trips),
                None,
                &operands,
                self.mem,
                div,
                &warm,
                2,
            );
            kb.place_label(done);
        } else if self.data_dependent {
            let div = self.body_divergence.then(|| self.scratch(&[gtid.0]));
            self.emit_loop(
                &mut kb,
                acc,
                ctr,
                Some(self.trips),
                bound_reg,
                &operands,
                self.mem,
                div,
                &warm,
                1,
            );
        } else {
            // Mild per-warp trip variation: the loop counter starts at
            // `warpid & 7`, so each warp runs `trips - (warpid & 7)`
            // iterations. Real kernels never run in perfect lock-step
            // across 64 warps; without this the uniform synthetic warps
            // phase-lock on the LSU and produce chaotic timing resonance.
            // (No extra register and no change to which registers are
            // statically hot — the counter is hot by design.)
            let div = self.body_divergence.then(|| self.scratch(&[gtid.0]));
            kb.mov_special(ctr, SpecialReg::WarpId);
            kb.iand_imm(ctr, ctr, 7);
            // Tiled kernels amortise their barrier over 4 unrolled
            // iterations; the trip count shrinks to compensate.
            let (unroll, trips) = if self.mem == MemPattern::SharedTile {
                (4, (self.trips / 4).max(2))
            } else {
                (1, self.trips)
            };
            self.emit_loop(
                &mut kb,
                acc,
                ctr,
                Some(trips),
                None,
                &operands,
                self.mem,
                div,
                &warm,
                unroll,
            );
        }

        // --- Epilogue: store the result.
        let s = self.scratch(&[gtid.0]);
        kb.iadd_imm(s, gtid, OUT_BASE);
        kb.stg(s, acc, 0);
        kb.exit();
        kb.build()
            .unwrap_or_else(|e| panic!("recipe {} built an invalid kernel: {e}", self.name))
    }

    /// The trip-count initialisation block for data-dependent recipes:
    /// one word per thread in `[lo, hi)`, deterministic per seed.
    pub fn trips_init(total_threads: u32, lo: u32, hi: u32, seed: u64) -> (u32, Vec<u32>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let words = (0..total_threads).map(|_| rng.gen_range(lo..hi)).collect();
        (TRIPS_BASE, words)
    }

    /// Pointer-chase / streaming data initialisation: pseudo-random words
    /// at [`DATA_BASE`].
    pub fn data_init(words: u32, seed: u64) -> (u32, Vec<u32>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..words)
            .map(|_| DATA_BASE + rng.gen_range(0..words))
            .collect();
        (DATA_BASE, data)
    }
}

/// Builds a launch geometry for a recipe.
pub fn grid(num_ctas: u32, threads_per_cta: u32) -> GridConfig {
    GridConfig::new(num_ctas, threads_per_cta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::StaticRegisterProfile;

    fn basic() -> KernelRecipe {
        KernelRecipe::basic("t", 10, vec![5, 6, 7, 8], 20)
    }

    #[test]
    fn register_budget_is_exact() {
        let k = basic().build();
        assert_eq!(k.regs_per_thread(), 10);
    }

    #[test]
    fn hot_registers_dominate_statics_without_decoys() {
        let k = basic().build();
        let p = StaticRegisterProfile::analyze(&k);
        let top = p.top_n(4);
        for r in [5u8, 6] {
            assert!(
                top.contains(&Reg(r)),
                "R{r} should be statically hot: {top:?}"
            );
        }
    }

    #[test]
    fn decoys_dominate_statics() {
        let mut r = basic();
        r.decoys = vec![1, 2, 3, 4];
        let k = r.build();
        let p = StaticRegisterProfile::analyze(&k);
        let top = p.top_n(4);
        for d in [1u8, 2, 3, 4] {
            assert!(
                top.contains(&Reg(d)),
                "decoy R{d} must fool the compiler: top = {top:?}"
            );
        }
    }

    #[test]
    fn data_dependent_recipe_loads_bound() {
        let mut r = basic();
        r.data_dependent = true;
        let k = r.build();
        // The kernel contains exactly one trip-count load plus no other
        // ldg (MemPattern::None).
        let loads = k
            .instructions()
            .iter()
            .filter(|i| i.opcode == prf_isa::Opcode::Ldg)
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn streaming_recipe_has_loop_loads() {
        let mut r = basic();
        r.mem = MemPattern::Streaming { stride: 32 };
        let k = r.build();
        let loads = k
            .instructions()
            .iter()
            .filter(|i| i.opcode == prf_isa::Opcode::Ldg)
            .count();
        assert_eq!(loads, 1, "one load in the loop body");
    }

    #[test]
    fn shared_tile_has_barrier() {
        let mut r = basic();
        r.mem = MemPattern::SharedTile;
        let k = r.build();
        assert!(k
            .instructions()
            .iter()
            .any(|i| i.opcode == prf_isa::Opcode::Bar));
    }

    #[test]
    fn pilot_variant_emits_two_paths() {
        let mut r = basic();
        r.pilot_variant = Some(PilotVariant {
            pilot_hot: vec![1, 2, 3],
            pilot_trips: 5,
        });
        let k = r.build();
        // Both loops exist: at least two backward branches.
        let backwards = k
            .instructions()
            .iter()
            .enumerate()
            .filter(|(pc, i)| i.opcode == prf_isa::Opcode::Bra && i.target.unwrap_or(0) < *pc)
            .count();
        assert!(backwards >= 2, "expected two loops, got {backwards}");
    }

    #[test]
    fn trips_init_is_deterministic_and_bounded() {
        let (base, a) = KernelRecipe::trips_init(100, 10, 50, 7);
        let (_, b) = KernelRecipe::trips_init(100, 10, 50, 7);
        assert_eq!(a, b);
        assert_eq!(base, TRIPS_BASE);
        assert!(a.iter().all(|&t| (10..50).contains(&t)));
    }

    #[test]
    #[should_panic(expected = "both hot and decoy")]
    fn overlapping_roles_rejected() {
        let mut r = basic();
        r.decoys = vec![5];
        r.build();
    }

    #[test]
    #[should_panic(expected = "streaming needs 2 operand registers")]
    fn streaming_needs_operands() {
        let mut r = KernelRecipe::basic("t", 8, vec![1, 2, 3], 10);
        r.mem = MemPattern::Streaming { stride: 1 };
        r.build();
    }
}
