//! The 17-benchmark suite of the paper's evaluation (Rodinia, Parboil,
//! and the GPGPU-Sim workloads of Table I), reproduced synthetically.
//!
//! Each benchmark matches Table I's register/CTA shape exactly and its
//! category behaviour structurally:
//!
//! * **Category 1** — loop-dominated kernels whose loop registers are also
//!   the statically most frequent: compiler ≈ pilot ≈ optimal.
//! * **Category 2** — decoy registers dominate the static counts while
//!   data-dependent loops make other registers dynamically hot: the
//!   compiler mispredicts, the pilot does not.
//! * **Category 3** — very few warps, and the pilot warp executes a
//!   different (shorter) path than the rest: the pilot both finishes late
//!   relative to the kernel and reports an unrepresentative hot set.
//!
//! Grid sizes are scaled down (tens of CTAs instead of thousands) so the
//! whole suite simulates in seconds; the pilot-runtime percentages
//! therefore reproduce the paper's *ordering* (§II Table I): negligible
//! for most benchmarks, large for MUM/CP and dominant for LIB/WP.

use prf_core::Launch;

use crate::recipe::{grid, KernelRecipe, MemPattern, PilotVariant};
use crate::spec::{Category, Table1Row, Workload};

fn row(regs: u8, threads: u32, pilot_pct: f64) -> Table1Row {
    Table1Row {
        regs_per_thread: regs,
        threads_per_cta: threads,
        pilot_cta_pct: pilot_pct,
    }
}

fn launch(recipe: &KernelRecipe, num_ctas: u32, threads: u32) -> Launch {
    Launch::new(recipe.build(), grid(num_ctas, threads))
}

/// BFS (Rodinia): irregular pointer-chasing traversal, 7 regs × 256
/// threads.
pub fn bfs() -> Workload {
    let mut r = KernelRecipe::basic("bfs", 7, vec![2, 3, 4], 10);
    r.mem = MemPattern::Chase;
    r.body_divergence = true;
    Workload {
        name: "BFS",
        category: Category::One,
        launches: vec![launch(&r, 96, 256)],
        mem_init: vec![KernelRecipe::data_init(4096, 11)],
        table1: row(7, 256, 0.12),
    }
}

/// b+tree (Rodinia): wide CTAs (508 threads) searching node arrays.
pub fn btree() -> Workload {
    let mut r = KernelRecipe::basic("btree", 15, vec![5, 6, 7, 8, 9], 10);
    r.mem = MemPattern::Streaming { stride: 33 };
    Workload {
        name: "btree",
        category: Category::One,
        launches: vec![launch(&r, 48, 508)],
        mem_init: vec![],
        table1: row(15, 508, 0.7),
    }
}

/// hotspot (Rodinia): stencil over shared-memory tiles with barriers.
pub fn hotspot() -> Workload {
    let mut r = KernelRecipe::basic("hotspot", 27, vec![10, 11, 12, 13, 14], 12);
    r.mem = MemPattern::SharedTile;
    Workload {
        name: "hotspot",
        category: Category::One,
        launches: vec![launch(&r, 80, 256)],
        mem_init: vec![],
        table1: row(27, 256, 3.6),
    }
}

/// nw (Rodinia, Needleman–Wunsch): tiny 16-thread CTAs.
pub fn nw() -> Workload {
    let mut r = KernelRecipe::basic("nw", 21, vec![4, 5, 6, 7], 12);
    r.mem = MemPattern::SharedTile;
    Workload {
        name: "nw",
        category: Category::One,
        launches: vec![launch(&r, 160, 16)],
        mem_init: vec![],
        table1: row(21, 16, 0.48),
    }
}

/// stencil (Parboil): 1024-thread CTAs over shared tiles.
pub fn stencil() -> Workload {
    let mut r = KernelRecipe::basic("stencil", 15, vec![6, 7, 8, 9], 10);
    r.mem = MemPattern::SharedTile;
    Workload {
        name: "stencil",
        category: Category::One,
        launches: vec![launch(&r, 24, 1024)],
        mem_init: vec![],
        table1: row(15, 1024, 0.2),
    }
}

/// backprop (Rodinia): two kernels with *different* hot-register sets —
/// the paper calls out R0/R8/R9 in the first kernel vs R4/R5/R6 in the
/// second (§II).
pub fn backprop() -> Workload {
    let mut k1 = KernelRecipe::basic("backprop_layerforward", 13, vec![0, 8, 9], 12);
    k1.mem = MemPattern::Chase;
    let mut k2 = KernelRecipe::basic("backprop_adjust_weights", 13, vec![4, 5, 6], 10);
    k2.mem = MemPattern::Chase;
    Workload {
        name: "backprop",
        category: Category::One,
        launches: vec![launch(&k1, 64, 256), launch(&k2, 64, 256)],
        mem_init: vec![KernelRecipe::data_init(4096, 13)],
        table1: row(13, 256, 2.6),
    }
}

/// sad (Parboil): 61-thread CTAs (partial last warp), register heavy.
pub fn sad() -> Workload {
    let r = KernelRecipe::basic("sad", 29, vec![12, 13, 14, 15, 16], 12);
    Workload {
        name: "sad",
        category: Category::One,
        launches: vec![launch(&r, 160, 61)],
        mem_init: vec![],
        table1: row(29, 61, 0.13),
    }
}

/// srad (Rodinia): streaming diffusion kernel.
pub fn srad() -> Workload {
    let mut r = KernelRecipe::basic("srad", 12, vec![3, 4, 5, 6], 10);
    r.mem = MemPattern::Streaming { stride: 32 };
    Workload {
        name: "srad",
        category: Category::One,
        launches: vec![launch(&r, 96, 256)],
        mem_init: vec![],
        table1: row(12, 256, 0.6),
    }
}

/// MUM (GPGPU-Sim suite): divergent suffix-tree matching; few CTAs, so
/// the pilot runs a large fraction of the kernel (37% in the paper).
pub fn mum() -> Workload {
    let mut r = KernelRecipe::basic("mum", 15, vec![5, 6, 7, 8], 40);
    r.mem = MemPattern::Chase;
    r.body_divergence = true;
    Workload {
        name: "MUM",
        category: Category::One,
        launches: vec![launch(&r, 16, 256)],
        mem_init: vec![KernelRecipe::data_init(4096, 17)],
        table1: row(15, 256, 37.0),
    }
}

/// kmeans (Rodinia): data-dependent iteration counts per point.
pub fn kmeans() -> Workload {
    let mut r = KernelRecipe::basic("kmeans", 9, vec![5, 6, 7, 8], 22);
    r.decoys = vec![1, 2];
    r.data_dependent = true;
    Workload {
        name: "kmeans",
        category: Category::Two,
        launches: vec![launch(&r, 64, 256)],
        mem_init: vec![KernelRecipe::trips_init(64 * 256, 14, 30, 19)],
        table1: row(9, 256, 7.5),
    }
}

/// lavaMD (Rodinia): neighbour-count-dependent inner loops.
pub fn lavamd() -> Workload {
    let mut r = KernelRecipe::basic("lavaMD", 6, vec![3, 4, 5], 20);
    r.decoys = vec![1, 2];
    r.data_dependent = true;
    Workload {
        name: "lavaMD",
        category: Category::Two,
        launches: vec![launch(&r, 96, 128)],
        mem_init: vec![KernelRecipe::trips_init(96 * 128, 12, 28, 23)],
        table1: row(6, 128, 0.2),
    }
}

/// mri-q (Parboil): Q-matrix computation, trip counts from sample counts.
pub fn mri_q() -> Workload {
    let mut r = KernelRecipe::basic("mri-q", 12, vec![7, 8, 9, 10, 11], 24);
    r.decoys = vec![2, 3, 4];
    r.data_dependent = true;
    Workload {
        name: "mri-q",
        category: Category::Two,
        launches: vec![launch(&r, 32, 512)],
        mem_init: vec![KernelRecipe::trips_init(32 * 512, 16, 32, 29)],
        table1: row(12, 512, 14.3),
    }
}

/// NN (Rodinia, nearest neighbour): 169-thread CTAs.
pub fn nn() -> Workload {
    let mut r = KernelRecipe::basic("NN", 10, vec![5, 6, 7, 8, 9], 18);
    r.decoys = vec![1, 2];
    r.data_dependent = true;
    Workload {
        name: "NN",
        category: Category::Two,
        launches: vec![launch(&r, 90, 169)],
        mem_init: vec![KernelRecipe::trips_init(90 * 192, 12, 26, 31)],
        table1: row(10, 169, 8.2),
    }
}

/// sgemm (Parboil): the paper's §III example — a static first-4
/// allocation captures only ~25% of accesses; the true hot registers are
/// high-numbered (R20+).
pub fn sgemm() -> Workload {
    let mut r = KernelRecipe::basic("sgemm", 27, vec![20, 21, 22, 23, 24, 25], 26);
    r.decoys = vec![5, 6, 7, 8, 9];
    r.data_dependent = true;
    Workload {
        name: "sgemm",
        category: Category::Two,
        launches: vec![launch(&r, 96, 128)],
        mem_init: vec![KernelRecipe::trips_init(96 * 128, 18, 36, 37)],
        table1: row(27, 128, 16.2),
    }
}

/// CP (GPGPU-Sim suite): Coulomb potential — the paper names R1/R9/R10
/// as its hot registers (§II); few CTAs → pilot runs 47% of the kernel.
pub fn cp() -> Workload {
    let mut r = KernelRecipe::basic("cp", 12, vec![1, 9, 10, 11], 60);
    r.decoys = vec![3, 4, 5];
    r.data_dependent = true;
    Workload {
        name: "CP",
        category: Category::Two,
        launches: vec![launch(&r, 24, 128)],
        mem_init: vec![KernelRecipe::trips_init(24 * 128, 48, 80, 41)],
        table1: row(12, 128, 47.0),
    }
}

/// LIB (GPGPU-Sim suite): 64-thread CTAs, very few warps; the pilot path
/// is shorter than everyone else's → pilot runs ~60% of the kernel and
/// reports an unrepresentative hot set.
pub fn lib() -> Workload {
    let mut r = KernelRecipe::basic("lib", 18, vec![10, 11, 12, 13], 60);
    r.pilot_variant = Some(PilotVariant {
        pilot_hot: vec![2, 3, 4, 5],
        pilot_trips: 56,
    });
    Workload {
        name: "LIB",
        category: Category::Three,
        launches: vec![launch(&r, 4, 64)],
        mem_init: vec![],
        table1: row(18, 64, 60.0),
    }
}

/// WP (GPGPU-Sim suite): the extreme few-warp case — the pilot runs 75%
/// of the kernel in the paper.
pub fn wp() -> Workload {
    let mut r = KernelRecipe::basic("wp", 8, vec![4, 5, 6], 80);
    r.pilot_variant = Some(PilotVariant {
        pilot_hot: vec![1, 2, 3],
        pilot_trips: 90,
    });
    Workload {
        name: "WP",
        category: Category::Three,
        launches: vec![launch(&r, 3, 64)],
        mem_init: vec![],
        table1: row(8, 64, 75.0),
    }
}

/// The full 17-benchmark suite in Table I order.
pub fn suite() -> Vec<Workload> {
    vec![
        bfs(),
        btree(),
        hotspot(),
        nw(),
        stencil(),
        backprop(),
        sad(),
        srad(),
        mum(),
        kmeans(),
        lavamd(),
        mri_q(),
        nn(),
        sgemm(),
        cp(),
        lib(),
        wp(),
    ]
}

/// Looks a workload up by its Table I name (case-insensitive).
pub fn by_name(name: &str) -> Option<Workload> {
    suite()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_17_benchmarks() {
        assert_eq!(suite().len(), 17);
    }

    #[test]
    fn table1_register_counts_match_exactly() {
        for w in suite() {
            assert_eq!(
                w.regs_per_thread(),
                w.table1.regs_per_thread,
                "{}: regs/thread mismatch",
                w.name
            );
        }
    }

    #[test]
    fn table1_cta_shapes_match_exactly() {
        for w in suite() {
            assert_eq!(
                w.threads_per_cta(),
                w.table1.threads_per_cta,
                "{}: threads/CTA mismatch",
                w.name
            );
        }
    }

    #[test]
    fn category_split_matches_paper() {
        let cats: Vec<(&str, Category)> = suite().iter().map(|w| (w.name, w.category)).collect();
        let of = |n: &str| cats.iter().find(|(m, _)| *m == n).unwrap().1;
        for n in [
            "BFS", "btree", "hotspot", "nw", "stencil", "backprop", "sad", "srad", "MUM",
        ] {
            assert_eq!(of(n), Category::One, "{n}");
        }
        for n in ["kmeans", "lavaMD", "mri-q", "NN", "sgemm", "CP"] {
            assert_eq!(of(n), Category::Two, "{n}");
        }
        for n in ["LIB", "WP"] {
            assert_eq!(of(n), Category::Three, "{n}");
        }
    }

    #[test]
    fn backprop_has_two_kernels_with_paper_hot_sets() {
        let w = backprop();
        assert_eq!(w.launches.len(), 2);
        // The paper: K1 hot = R0/R8/R9, K2 hot = R4/R5/R6. The recipe's
        // loop registers are exactly those.
        let k1 = &w.launches[0].kernel;
        let p1 = prf_isa::StaticRegisterProfile::analyze(k1);
        let top1 = p1.top_n(3);
        for r in [0u8, 8, 9] {
            assert!(top1.contains(&prf_isa::Reg(r)), "K1 hot R{r}: {top1:?}");
        }
        let p2 = prf_isa::StaticRegisterProfile::analyze(&w.launches[1].kernel);
        let top2 = p2.top_n(3);
        for r in [4u8, 5, 6] {
            assert!(top2.contains(&prf_isa::Reg(r)), "K2 hot R{r}: {top2:?}");
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("sgemm").is_some());
        assert!(by_name("SGEMM").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn category2_workloads_have_decoys_and_data_dependence() {
        // Structural spot-check on sgemm: its static top-4 must not
        // include the designated dynamic-hot registers.
        let w = sgemm();
        let p = prf_isa::StaticRegisterProfile::analyze(&w.launches[0].kernel);
        let top = p.top_n(4);
        for hot in [20u8, 21] {
            assert!(
                !top.contains(&prf_isa::Reg(hot)),
                "sgemm: dynamic-hot R{hot} must not be statically top-4: {top:?}"
            );
        }
    }

    #[test]
    fn all_kernels_have_mem_init_within_bounds() {
        for w in suite() {
            for (base, words) in &w.mem_init {
                assert!((*base as usize + words.len()) < (1 << 22), "{}", w.name);
            }
        }
    }
}
