//! Workload metadata: the paper's Table I reference values and the
//! category split of Fig. 4.

use prf_core::Launch;

/// The profiling-behaviour category a benchmark falls into (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Compiler and pilot profiling agree within 10%: static occurrence
    /// counts track dynamic access counts.
    One,
    /// Compiler profiling lands >10% *below* pilot: dynamic information
    /// (loop counts, branch paths) is needed.
    Two,
    /// Compiler lands >10% *above* pilot: the kernel has so few warps that
    /// the pilot's run is unrepresentative and/or finishes too late
    /// (LIB, WP).
    Three,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::One => "Category 1",
            Category::Two => "Category 2",
            Category::Three => "Category 3",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Table I (the published reference values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Registers per thread.
    pub regs_per_thread: u8,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Pilot-warp runtime as a percentage of kernel time, as published.
    pub pilot_cta_pct: f64,
}

/// A complete benchmark: launches, memory initialisation, and reference
/// metadata.
///
/// The synthetic kernels reproduce the paper-relevant properties of the
/// Rodinia/Parboil originals: the Table I register/CTA shape *exactly*,
/// the register access skew of Fig. 2 approximately, and the category
/// behaviour of Fig. 4 structurally (see `prf-workloads` crate docs).
/// Grid sizes are scaled down so a run takes well under a second; the
/// published pilot percentages are therefore matched in *ordering* (tiny
/// for most workloads, large for MUM/CP/LIB/WP), not absolute value.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (as in Table I).
    pub name: &'static str,
    /// Fig. 4 category.
    pub category: Category,
    /// Kernel launches, run back to back.
    pub launches: Vec<Launch>,
    /// Global-memory blocks to load before the first launch:
    /// `(base_word_address, words)`.
    pub mem_init: Vec<(u32, Vec<u32>)>,
    /// Published Table I values for comparison in reports.
    pub table1: Table1Row,
}

impl Workload {
    /// Registers per thread of the first (or only) kernel.
    pub fn regs_per_thread(&self) -> u8 {
        self.launches[0].kernel.regs_per_thread()
    }

    /// Threads per CTA of the first launch.
    pub fn threads_per_cta(&self) -> u32 {
        self.launches[0].grid.threads_per_cta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_display() {
        assert_eq!(Category::One.to_string(), "Category 1");
        assert_eq!(Category::Three.to_string(), "Category 3");
    }
}
