//! # prf-workloads — the Table I benchmark suite, synthetically reproduced
//!
//! The paper evaluates on 17 benchmarks from Rodinia, Parboil, and the
//! GPGPU-Sim distribution (Table I). The original CUDA binaries cannot run
//! on our Rust simulator, so each benchmark is reproduced as a synthetic
//! kernel that preserves the four properties the paper's results depend
//! on:
//!
//! 1. **Shape** — registers/thread and threads/CTA match Table I exactly
//!    (including the odd CTA sizes: sad's 61, NN's 169, btree's 508).
//! 2. **Access skew** — a small hot-register set receives most dynamic
//!    accesses (Fig. 2's top-3 ≈ 62% average).
//! 3. **Category behaviour** (Fig. 4) — Category 1: static ≈ dynamic;
//!    Category 2: decoy registers fool the compiler while data-dependent
//!    loops make other registers hot; Category 3: the pilot warp is
//!    unrepresentative and slow to finish.
//! 4. **Pilot-runtime ordering** (Table I last column) — negligible for
//!    most, large for MUM/CP, dominant for LIB/WP.
//!
//! See [`suite()`](suite::suite) for the full list and [`recipe::KernelRecipe`] for the
//! generator.
//!
//! # Example
//!
//! ```rust
//! let workloads = prf_workloads::suite();
//! assert_eq!(workloads.len(), 17);
//! let sgemm = prf_workloads::by_name("sgemm").unwrap();
//! assert_eq!(sgemm.regs_per_thread(), 27);
//! ```

pub mod generate;
pub mod recipe;
pub mod spec;
pub mod suite;

pub use generate::{FuzzCase, KernelGenerator, RandomKernelGenerator};
pub use recipe::{KernelRecipe, MemPattern, PilotVariant};
pub use spec::{Category, Table1Row, Workload};
pub use suite::{by_name, suite};
