//! Property tests over the kernel-recipe generator: any structurally valid
//! recipe must build a valid kernel that terminates on the simulator with
//! its designated hot registers dominating the dynamic access counts.

use proptest::prelude::*;

use prf_isa::GridConfig;
use prf_sim::{BaselineRf, Gpu, GpuConfig};
use prf_workloads::{KernelRecipe, MemPattern};

/// Strategy: a random, structurally valid compute recipe.
fn arb_recipe() -> impl Strategy<Value = KernelRecipe> {
    (6u8..30, 2u32..20, any::<u64>()).prop_flat_map(|(regs, trips, seed)| {
        // Pick 3..=5 distinct hot registers inside the budget (leaving at
        // least two registers free for gtid + scratch, per the recipe's
        // contract), derived deterministically from the seed.
        let nhot = (3 + (seed % 3) as usize).min(regs as usize - 2);
        let mut hot = Vec::new();
        let mut v = seed;
        while hot.len() < nhot {
            let r = (v % u64::from(regs)) as u8;
            if !hot.contains(&r) {
                hot.push(r);
            }
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        Just(KernelRecipe::basic("prop", regs, hot, trips))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_recipes_build_and_terminate(recipe in arb_recipe()) {
        let kernel = recipe.build();
        prop_assert_eq!(kernel.regs_per_thread(), recipe.regs);

        let config = GpuConfig {
            global_mem_words: 1 << 14,
            max_cycles: 2_000_000,
            ..GpuConfig::kepler_single_sm()
        };
        let mut gpu = Gpu::new(config);
        let r = gpu
            .run(kernel, GridConfig::new(2, 64), &|_| Box::new(BaselineRf::stv(24)))
            .expect("recipe kernels terminate");
        prop_assert!(r.cycles > 0);

        // The designated hot registers must be collectively dominant.
        let hist = &r.stats.reg_accesses;
        let hot_share = hist.coverage(
            &recipe.hot.iter().map(|&h| prf_isa::Reg(h)).collect::<Vec<_>>(),
        );
        prop_assert!(
            hot_share > 0.35,
            "hot set should dominate, got {:.2} for {:?}",
            hot_share,
            recipe.hot
        );
    }

    #[test]
    fn chase_recipes_terminate(regs in 8u8..20, trips in 2u32..12) {
        let mut r = KernelRecipe::basic("chase", regs, vec![2, 3, 4], trips);
        r.mem = MemPattern::Chase;
        let kernel = r.build();
        let config = GpuConfig {
            global_mem_words: 1 << 14,
            max_cycles: 2_000_000,
            ..GpuConfig::kepler_single_sm()
        };
        let mut gpu = Gpu::new(config);
        let (base, data) = KernelRecipe::data_init(2048, 5);
        gpu.global_mem().load(base, &data);
        let res = gpu
            .run(kernel, GridConfig::new(2, 64), &|_| Box::new(BaselineRf::stv(24)))
            .expect("chase kernels terminate");
        prop_assert!(res.stats.mem_instructions > 0);
    }
}
