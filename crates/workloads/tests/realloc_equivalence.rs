//! Semantics-preservation oracle for the register reallocation pass
//! (`prf-isa::realloc`) over the Table I workload suite.
//!
//! Tier-1 coverage: every suite kernel must (a) validate after
//! rewriting, (b) shrink (or at worst keep) its register allocation,
//! and (c) produce a bit-identical global-memory image and instruction
//! count when the rewritten kernel replaces the original under the
//! simulator with auditing enabled. The full scheduler × RF-model
//! matrix (and generated kernels) runs in the release-mode `prf-fuzz
//! --mode realloc` harness; here we pin one representative baseline and
//! one partitioned configuration so the invariant is enforced on every
//! `cargo test`.
//!
//! ## Why the differential runs on a reduced grid
//!
//! Renaming registers changes *timing*: the bank swizzle is
//! `(warp_slot + reg) % banks` and the scoreboard tracks hazards by
//! register name, so a compacted kernel stalls differently — that is
//! the point of the pass. Timing may only ever be allowed to change
//! *performance*, never *values*, so the oracle must run the kernels in
//! a provably race-free regime. At Table I's full launch geometry two
//! recipe constructs are deliberate cross-thread races (they model the
//! timing sensitivity of the real benchmarks): streaming address
//! walkers eventually overlap the output region (btree's warp 248 reads
//! other threads' freshly-stored results), and shared-tile kernels read
//! a neighbour warp's slot between barriers. On a one-warp-per-CTA grid
//! both disappear: walkers stay far below the output region at 256
//! threads, and every neighbour read is either same-warp-lockstep
//! (deterministic) or an unwritten slot (zero). The *kernels* under
//! test are the exact Table I instruction streams; only the launch
//! geometry shrinks.

use std::sync::Arc;

use prf_core::{rf_model_factory, PartitionedRfConfig, RfKind};
use prf_isa::{reallocate, GridConfig, Kernel, KernelValidator};
use prf_sim::{Gpu, GpuConfig, SchedulerPolicy};
use prf_workloads::suite;

/// One warp per CTA: the race-free differential geometry (see module
/// docs). All eight CTAs are resident from cycle zero, so `%warpid`
/// slot assignment is deterministic too.
fn diff_grid() -> GridConfig {
    GridConfig::new(8, 32)
}

fn sim_config() -> GpuConfig {
    GpuConfig {
        scheduler: SchedulerPolicy::Gto,
        audit: true,
        // Covers the recipes' output region (0x100000 + gtid) with the
        // reduced grid's walkers staying far below it.
        global_mem_words: 1 << 21,
        max_cycles: 4_000_000,
        ..GpuConfig::kepler_single_sm()
    }
}

/// Runs `kernel` on the reduced grid with `w`'s memory image, returning
/// (instructions, final memory image).
fn run_kernel_image(
    kernel: Arc<Kernel>,
    mem_init: &[(u32, Vec<u32>)],
    rf: &RfKind,
    name: &str,
) -> (u64, Vec<u32>) {
    let config = sim_config();
    let telemetry = prf_core::shared_telemetry();
    let factory = rf_model_factory(rf, config.num_rf_banks, &telemetry);
    let mut gpu = Gpu::new(config);
    for (base, words) in mem_init {
        gpu.global_mem().load(*base, words);
    }
    let r = gpu
        .run(kernel, diff_grid(), &factory)
        .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
    let audit = r.audit.as_ref().expect("audit enabled");
    assert!(audit.is_clean(), "{name}: audit violations: {audit}");
    let image = (0..gpu.global_mem_ref().len() as u32)
        .map(|a| gpu.global_mem_ref().read(a))
        .collect();
    (r.stats.instructions, image)
}

/// Every Table I kernel rewrites to a validating, no-larger kernel with
/// the same instruction stream shape, deterministically.
#[test]
fn table1_kernels_realloc_validate_and_compact() {
    let validator = KernelValidator::new();
    for w in suite() {
        for launch in &w.launches {
            let r = reallocate(&launch.kernel)
                .unwrap_or_else(|e| panic!("{}: realloc failed: {e}", w.name));
            validator
                .validate(&r.kernel)
                .unwrap_or_else(|e| panic!("{}: rewritten kernel invalid: {e}", w.name));
            assert_eq!(r.kernel.len(), launch.kernel.len(), "{}", w.name);
            assert!(
                r.new_regs <= r.old_regs,
                "{}: realloc grew the register set ({} -> {})",
                w.name,
                r.old_regs,
                r.new_regs
            );
            // Determinism: a second run produces the identical mapping.
            let again = reallocate(&launch.kernel).unwrap();
            assert_eq!(again.map, r.map, "{}: realloc is not deterministic", w.name);
        }
    }
}

/// Bit-identical architectural behaviour: instruction count and final
/// global-memory image match between original and rewritten kernels for
/// every Table I kernel, on both a monolithic and a partitioned RF.
#[test]
fn table1_realloc_preserves_memory_image_and_instructions() {
    let banks = GpuConfig::kepler_single_sm().num_rf_banks;
    let rfs = [
        RfKind::MrfStv,
        RfKind::Partitioned(PartitionedRfConfig::paper_default(banks)),
    ];
    let mut cells = 0usize;
    for w in suite() {
        for (li, launch) in w.launches.iter().enumerate() {
            let rewritten = Arc::new(
                reallocate(&launch.kernel)
                    .unwrap_or_else(|e| panic!("{}: realloc failed: {e}", w.name))
                    .kernel,
            );
            for rf in &rfs {
                let tag = format!("{} launch {li} [{}]", w.name, rf.name());
                let (base_instrs, base_image) =
                    run_kernel_image(Arc::clone(&launch.kernel), &w.mem_init, rf, &tag);
                let (re_instrs, re_image) =
                    run_kernel_image(Arc::clone(&rewritten), &w.mem_init, rf, &tag);
                assert_eq!(
                    base_instrs, re_instrs,
                    "{tag}: instruction count drifted under realloc"
                );
                assert_eq!(
                    base_image, re_image,
                    "{tag}: memory image drifted under realloc"
                );
                cells += 1;
            }
        }
    }
    assert!(
        cells >= 2 * 17,
        "expected every suite workload covered, got {cells} cells"
    );
}
