//! Per-workload behavioural tests: every benchmark must exhibit its
//! category's profiling structure and the suite-wide invariants the
//! paper's analysis rests on.

use prf_core::{compiler_hot_registers, run_experiment, PartitionedRfConfig, RfKind};
use prf_isa::StaticRegisterProfile;
use prf_sim::GpuConfig;
use prf_workloads::{suite, Category, Workload};

fn gpu() -> GpuConfig {
    GpuConfig::kepler_single_sm()
}

fn run(w: &Workload, rf: &RfKind) -> prf_core::ExperimentResult {
    run_experiment(&gpu(), rf, &w.launches, &w.mem_init).unwrap()
}

/// Identification coverages of (compiler, pilot) for a workload's first
/// kernel against its dynamic histogram.
fn coverages(w: &Workload) -> (f64, f64) {
    let single = Workload {
        name: w.name,
        category: w.category,
        launches: vec![w.launches[0].clone()],
        mem_init: w.mem_init.clone(),
        table1: w.table1,
    };
    let base = run(&single, &RfKind::MrfStv);
    let hist = &base.stats.reg_accesses;
    let part = run(
        &single,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
    );
    (
        hist.coverage(&part.telemetry.compiler_hot_regs),
        hist.coverage(&part.telemetry.pilot_hot_regs),
    )
}

#[test]
fn every_workload_terminates_under_every_rf() {
    for w in suite() {
        for rf in [
            RfKind::MrfStv,
            RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
        ] {
            let r = run(&w, &rf);
            assert!(r.cycles > 0, "{} under {}", w.name, r.rf_name);
            assert!(r.stats.instructions > 0, "{}", w.name);
        }
    }
}

#[test]
fn category1_compiler_tracks_pilot() {
    for w in suite().into_iter().filter(|w| w.category == Category::One) {
        let (c, p) = coverages(&w);
        assert!(
            c >= p - 0.10,
            "{}: Category 1 requires compiler ({c:.2}) within 10% of pilot ({p:.2})",
            w.name
        );
    }
}

#[test]
fn category2_pilot_beats_compiler_by_10_points() {
    for w in suite().into_iter().filter(|w| w.category == Category::Two) {
        let (c, p) = coverages(&w);
        assert!(
            p > c + 0.10,
            "{}: Category 2 requires pilot ({p:.2}) >10% above compiler ({c:.2})",
            w.name
        );
    }
}

#[test]
fn category3_compiler_beats_pilot_by_10_points() {
    for w in suite()
        .into_iter()
        .filter(|w| w.category == Category::Three)
    {
        let (c, p) = coverages(&w);
        assert!(
            c > p + 0.10,
            "{}: Category 3 requires compiler ({c:.2}) >10% above pilot ({p:.2})",
            w.name
        );
    }
}

#[test]
fn access_skew_holds_suite_wide() {
    let mut shares = Vec::new();
    for w in suite() {
        let r = run(&w, &RfKind::MrfStv);
        let s = r.stats.reg_accesses.top_share(3);
        assert!(s > 0.35, "{}: top-3 share {s:.2} too flat", w.name);
        shares.push(s);
    }
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(
        (0.55..0.72).contains(&mean),
        "suite mean top-3 share {mean:.3} should bracket the paper's 62%"
    );
}

#[test]
fn static_profiles_use_exactly_the_register_budget() {
    for w in suite() {
        for launch in &w.launches {
            let p = StaticRegisterProfile::analyze(&launch.kernel);
            let regs = launch.kernel.regs_per_thread();
            // Every allocated register is touched at least once.
            for r in 0..regs {
                assert!(
                    p.count(prf_isa::Reg(r)) > 0,
                    "{}: R{r} allocated but never referenced",
                    w.name
                );
            }
        }
    }
}

#[test]
fn compiler_hot_registers_are_deterministic() {
    for w in suite() {
        let a = compiler_hot_registers(&w.launches[0].kernel, 4);
        let b = compiler_hot_registers(&w.launches[0].kernel, 4);
        assert_eq!(a, b, "{}", w.name);
    }
}

#[test]
fn runs_are_deterministic_across_repeats() {
    let w = prf_workloads::by_name("kmeans").unwrap();
    let r1 = run(&w, &RfKind::MrfStv);
    let r2 = run(&w, &RfKind::MrfStv);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.stats.instructions, r2.stats.instructions);
    assert_eq!(
        r1.stats.reg_accesses.counts(),
        r2.stats.reg_accesses.counts()
    );
}

#[test]
fn pilot_identifies_designated_hot_registers() {
    // Spot checks against the paper-named hot sets.
    let check = |name: &str, expect: &[u8]| {
        let w = prf_workloads::by_name(name).unwrap();
        let single = Workload {
            name: w.name,
            category: w.category,
            launches: vec![w.launches[0].clone()],
            mem_init: w.mem_init.clone(),
            table1: w.table1,
        };
        let part = run(
            &single,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
        );
        let hot = &part.telemetry.pilot_hot_regs;
        for &r in expect {
            assert!(
                hot.contains(&prf_isa::Reg(r)),
                "{name}: pilot should find R{r}, got {hot:?}"
            );
        }
    };
    // backprop kernel 1: R0/R8/R9 (§II); CP: R1/R9/R10 (§II).
    check("backprop", &[0, 8, 9]);
    check("CP", &[1, 9, 10]);
}
