//! Round-trip property: `Kernel → Display → asm::parse_kernel →
//! encode_kernel` is bit-identical for generated kernels.
//!
//! The generator ([`prf_workloads::generate`]) emits every construct the
//! ISA has — guarded branches, loops, `selp` selectors, shuffles,
//! barriers, memory ops with byte offsets, hex immediates — so this
//! pins the whole `Display` dialect against the assembler: nothing the
//! pretty-printer emits may be lossy or unparseable.

use proptest::prelude::*;

use prf_isa::asm::parse_kernel;
use prf_isa::encode_kernel;
use prf_workloads::generate::{KernelGenerator, RandomKernelGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn display_parse_encode_roundtrips(seed in any::<u64>(), index in 0u64..64) {
        let case = RandomKernelGenerator::new(seed).generate(index);
        let original = &case.kernel;

        let text = original.to_string();
        let reparsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("Display output failed to parse: {e}\n{text}"));

        prop_assert_eq!(reparsed.name(), original.name());
        prop_assert_eq!(reparsed.instructions(), original.instructions());
        prop_assert_eq!(reparsed.regs_per_thread(), original.regs_per_thread());
        // Bit-identical through the binary codec too.
        prop_assert_eq!(encode_kernel(&reparsed), encode_kernel(original));
    }
}

/// The deterministic Table I recipes round-trip as well (not just the
/// fuzz generator's dialect subset).
#[test]
fn table1_kernels_roundtrip_through_display() {
    for w in prf_workloads::suite() {
        for launch in &w.launches {
            let k = &launch.kernel;
            let text = k.to_string();
            let reparsed = parse_kernel(&text)
                .unwrap_or_else(|e| panic!("{}: Display output failed to parse: {e}", w.name));
            assert_eq!(
                reparsed.instructions(),
                k.instructions(),
                "{}: instruction stream drifted through Display",
                w.name
            );
            assert_eq!(encode_kernel(&reparsed), encode_kernel(k), "{}", w.name);
        }
    }
}
