//! The swapping-table CAM model.
//!
//! The paper's swapping table is a small CAM holding the register
//! remapping: 2n entries of 13 bits each (6-bit original id, 6-bit swapped
//! id, valid bit) — 104 bits for n = 4. §III-B reports detailed RTL
//! evaluation: search delay of 105 ps in 22 nm CMOS, 95 ps in 16 nm CMOS,
//! and 55 ps in 7 nm FinFET — "less than 10% of a typical GPU clock cycle
//! (900 MHz)".

/// Technology node for the CAM evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 22 nm planar CMOS.
    Cmos22,
    /// 16 nm planar CMOS.
    Cmos16,
    /// 7 nm FinFET.
    FinFet7,
}

impl TechNode {
    /// All evaluated nodes.
    pub const ALL: [TechNode; 3] = [TechNode::Cmos22, TechNode::Cmos16, TechNode::FinFet7];

    /// Search delay of the 8-entry reference design at this node (ps) —
    /// the paper's RTL anchor values.
    fn base_delay_ps(self) -> f64 {
        match self {
            TechNode::Cmos22 => 105.0,
            TechNode::Cmos16 => 95.0,
            TechNode::FinFet7 => 55.0,
        }
    }

    /// Match-line + search energy per searched bit (fJ), representative
    /// figures per node.
    fn energy_per_bit_fj(self) -> f64 {
        match self {
            TechNode::Cmos22 => 0.55,
            TechNode::Cmos16 => 0.38,
            TechNode::FinFet7 => 0.12,
        }
    }
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TechNode::Cmos22 => "22nm CMOS",
            TechNode::Cmos16 => "16nm CMOS",
            TechNode::FinFet7 => "7nm FinFET",
        };
        f.write_str(s)
    }
}

/// Bits per swapping-table entry: 6-bit original register id + 6-bit
/// swapped id + valid bit.
pub const ENTRY_BITS: u32 = 13;

/// Reference entry count (n = 4 hot registers → 2n = 8 entries).
pub const REFERENCE_ENTRIES: u32 = 8;

/// GPU clock period the paper compares against (900 MHz → ~1111 ps).
pub const GPU_CLOCK_PS: f64 = 1.0e6 / 900.0e3 * 1000.0;

/// Physical model of the swapping-table CAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapTableCam {
    /// Number of entries (2n).
    pub entries: u32,
    /// Technology node.
    pub node: TechNode,
}

impl SwapTableCam {
    /// The paper's reference design: 8 entries at the given node.
    pub fn reference(node: TechNode) -> Self {
        SwapTableCam {
            entries: REFERENCE_ENTRIES,
            node,
        }
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u32 {
        self.entries * ENTRY_BITS
    }

    /// Search delay in picoseconds. The match line lengthens with entry
    /// count (log-ish growth for the small sizes of interest).
    pub fn search_delay_ps(&self) -> f64 {
        let scale = 1.0 + 0.12 * (f64::from(self.entries) / f64::from(REFERENCE_ENTRIES)).log2();
        self.node.base_delay_ps() * scale
    }

    /// Energy of one CAM search (fJ): all entries' match lines toggle.
    pub fn search_energy_fj(&self) -> f64 {
        f64::from(self.total_bits()) * self.node.energy_per_bit_fj()
    }

    /// Whether the search fits in `fraction` of the 900 MHz GPU cycle —
    /// the paper's "less than 10% of a typical GPU clock cycle" claim.
    pub fn fits_in_cycle_fraction(&self, fraction: f64) -> bool {
        self.search_delay_ps() <= fraction * GPU_CLOCK_PS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_delays_match_paper_rtl() {
        assert_eq!(
            SwapTableCam::reference(TechNode::Cmos22).search_delay_ps(),
            105.0
        );
        assert_eq!(
            SwapTableCam::reference(TechNode::Cmos16).search_delay_ps(),
            95.0
        );
        assert_eq!(
            SwapTableCam::reference(TechNode::FinFet7).search_delay_ps(),
            55.0
        );
    }

    #[test]
    fn reference_is_104_bits() {
        // §III-B: "8 entries and each entry has 13 bits ... for a total
        // size of 104 bits".
        assert_eq!(SwapTableCam::reference(TechNode::FinFet7).total_bits(), 104);
    }

    #[test]
    fn all_nodes_fit_in_ten_percent_of_cycle() {
        for node in TechNode::ALL {
            let cam = SwapTableCam::reference(node);
            assert!(
                cam.fits_in_cycle_fraction(0.10),
                "{node}: {} ps vs 10% of {} ps",
                cam.search_delay_ps(),
                GPU_CLOCK_PS
            );
        }
    }

    #[test]
    fn delay_grows_slowly_with_entries() {
        let small = SwapTableCam {
            entries: 8,
            node: TechNode::FinFet7,
        };
        let big = SwapTableCam {
            entries: 16,
            node: TechNode::FinFet7,
        };
        assert!(big.search_delay_ps() > small.search_delay_ps());
        assert!(big.search_delay_ps() < 1.5 * small.search_delay_ps());
    }

    #[test]
    fn finfet_search_energy_is_tiny() {
        // Orders of magnitude below a single RF access (7-15 pJ): the
        // paper's justification for ignoring the table in the energy math.
        let cam = SwapTableCam::reference(TechNode::FinFet7);
        assert!(
            cam.search_energy_fj() < 100.0,
            "{} fJ",
            cam.search_energy_fj()
        );
    }

    #[test]
    fn node_display() {
        assert_eq!(TechNode::FinFet7.to_string(), "7nm FinFET");
    }
}
