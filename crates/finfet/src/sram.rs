//! SRAM cell designs (6T/8T/9T/10T) and their static noise margins.
//!
//! The paper designed all four cells in 7 nm FinFET and ran HSpice Monte
//! Carlo to pick the 8T cell ("ideal design tradeoff between area and SNM
//! constraints", §IV-A). The nominal SNM model below is a linear-in-Vdd fit
//! through the paper's published points:
//!
//! * 8T: SNM 0.144 V at STV, 0.092 V at NTV (Table III),
//! * 8T with back gate grounded: 0.096 V at STV (Table III),
//! * 6T: 0.088 V at STV even with a larger cell (§IV-A).

use crate::device::{BackGate, STV};

/// SRAM cell topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SramCell {
    /// Classic 6-transistor cell (read-disturb limited at low voltage).
    T6,
    /// 8T cell with decoupled read port — the paper's choice.
    T8,
    /// 9T low-leakage cell.
    T9,
    /// 10T subthreshold-capable cell with differential read.
    T10,
}

impl SramCell {
    /// All cell designs the paper evaluated.
    pub const ALL: [SramCell; 4] = [SramCell::T6, SramCell::T8, SramCell::T9, SramCell::T10];

    /// Number of transistors.
    pub fn transistors(self) -> u32 {
        match self {
            SramCell::T6 => 6,
            SramCell::T8 => 8,
            SramCell::T9 => 9,
            SramCell::T10 => 10,
        }
    }

    /// Cell area relative to the 8T cell.
    ///
    /// The 6T cell must be sized up for stability, which is why the paper
    /// notes it ends up *larger* than the 8T cell yet still less stable.
    pub fn area_rel(self) -> f64 {
        match self {
            SramCell::T6 => 1.10,
            SramCell::T8 => 1.00,
            SramCell::T9 => 1.12,
            SramCell::T10 => 1.24,
        }
    }

    /// SNM offset relative to the 8T cell at the same voltage (volts).
    fn snm_offset(self) -> f64 {
        match self {
            SramCell::T6 => -0.056, // 0.088 V at STV
            SramCell::T8 => 0.0,
            SramCell::T9 => 0.006,
            SramCell::T10 => 0.012,
        }
    }

    /// Nominal static noise margin at supply `vdd` (volts).
    ///
    /// Linear fit through the paper's 8T anchors
    /// (0.144 V @ 0.45 V, 0.092 V @ 0.3 V → slope 0.3467 V/V); grounding
    /// the back gate costs a further 48 mV (Table III row 3).
    pub fn snm(self, vdd: f64, back_gate: BackGate) -> f64 {
        let base_8t = 0.144 + (vdd - STV) * (0.144 - 0.092) / 0.15;
        let bg = match back_gate {
            BackGate::Vdd => 0.0,
            BackGate::Grounded => -0.048,
        };
        (base_8t + self.snm_offset() + bg).max(0.0)
    }

    /// Minimum data-retention voltage `V_DDMIN` (volts): the supply below
    /// which the nominal SNM falls under the stability margin
    /// [`SNM_FAIL_THRESHOLD`].
    pub fn vddmin(self) -> f64 {
        // Invert the linear SNM model.
        let mut lo = 0.05;
        let mut hi = 1.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.snm(mid, BackGate::Vdd) > SNM_FAIL_THRESHOLD {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl std::fmt::Display for SramCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}T", self.transistors())
    }
}

/// SNM below this margin counts as a read/write stability failure in the
/// yield analysis (volts). 50 mV ≈ two thermal voltages of noise immunity,
/// a common criterion in low-voltage SRAM studies.
pub const SNM_FAIL_THRESHOLD: f64 = 0.050;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NTV;

    #[test]
    fn snm_8t_matches_table3() {
        let c = SramCell::T8;
        assert!((c.snm(STV, BackGate::Vdd) - 0.144).abs() < 1e-9);
        assert!((c.snm(NTV, BackGate::Vdd) - 0.092).abs() < 1e-9);
        assert!((c.snm(STV, BackGate::Grounded) - 0.096).abs() < 1e-9);
    }

    #[test]
    fn snm_6t_matches_section_iv() {
        assert!((SramCell::T6.snm(STV, BackGate::Vdd) - 0.088).abs() < 1e-9);
    }

    #[test]
    fn snm_ordering_follows_transistor_count() {
        for &v in &[NTV, STV] {
            let snms: Vec<f64> = SramCell::ALL
                .iter()
                .map(|c| c.snm(v, BackGate::Vdd))
                .collect();
            for w in snms.windows(2) {
                assert!(w[0] < w[1], "more transistors → more margin at {v} V");
            }
        }
    }

    #[test]
    fn snm_never_negative() {
        assert_eq!(SramCell::T6.snm(0.05, BackGate::Grounded), 0.0);
    }

    #[test]
    fn six_t_is_larger_than_8t() {
        // §IV-A: "the 6T SRAM cells even with a larger cell size than the
        // 8T SRAM cells have 0.088V SNM at STV".
        assert!(SramCell::T6.area_rel() > SramCell::T8.area_rel());
    }

    #[test]
    fn vddmin_ordering() {
        // Stabler cells hold data at lower voltage.
        assert!(SramCell::T8.vddmin() < SramCell::T6.vddmin());
        assert!(SramCell::T10.vddmin() < SramCell::T8.vddmin());
        // The paper runs 8T at NTV: NTV must be above 8T's VDDMIN.
        assert!(SramCell::T8.vddmin() < NTV);
        // ...but 6T at NTV is below its stable range — the reason 6T was
        // rejected.
        assert!(SramCell::T6.vddmin() > NTV);
    }

    #[test]
    fn display_names() {
        assert_eq!(SramCell::T8.to_string(), "8T");
        assert_eq!(SramCell::T10.to_string(), "10T");
    }
}
