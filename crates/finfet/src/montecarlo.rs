//! Monte Carlo process-variation analysis of SRAM cells.
//!
//! FinFETs are immune to random dopant fluctuation (undoped channels) but
//! still suffer line-edge roughness (LER) and work-function variation
//! (WFV), both of which shift the threshold voltage (§IV-A, citing Wang et
//! al. IEDM'11 and Patel et al. ED'09). We model each as an independent
//! Gaussian Vth shift, map the resulting mismatch onto the cell SNM, and
//! report the SNM distribution and yield — the Rust equivalent of the
//! paper's "detailed Monte Carlo simulation of Hspice models".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::BackGate;
use crate::sram::{SramCell, SNM_FAIL_THRESHOLD};

/// Vth sigma from line-edge roughness (volts), representative of 7 nm
/// FinFET variability studies.
pub const SIGMA_VTH_LER: f64 = 0.015;

/// Vth sigma from work-function variation (volts).
pub const SIGMA_VTH_WFV: f64 = 0.020;

/// How much SNM one volt of transistor mismatch costs. Mismatch between
/// the cross-coupled halves degrades the smaller lobe of the butterfly
/// curve roughly 1:1, softened by the cell's internal gain.
pub const SNM_MISMATCH_SENSITIVITY: f64 = 0.7;

/// Combined Vth sigma (LER ⊕ WFV, independent Gaussians).
pub fn sigma_vth_total() -> f64 {
    (SIGMA_VTH_LER.powi(2) + SIGMA_VTH_WFV.powi(2)).sqrt()
}

/// Result of a Monte Carlo SNM/yield run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldResult {
    /// Cell analysed.
    pub cell: SramCell,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Mean sampled SNM (V).
    pub snm_mean: f64,
    /// Standard deviation of sampled SNM (V).
    pub snm_std: f64,
    /// Minimum sampled SNM (V).
    pub snm_min: f64,
    /// Fraction of samples with SNM above [`SNM_FAIL_THRESHOLD`].
    pub yield_fraction: f64,
}

impl YieldResult {
    /// Failures per million cells.
    pub fn failures_ppm(&self) -> f64 {
        (1.0 - self.yield_fraction) * 1e6
    }
}

/// Draws one standard-normal sample (Box–Muller).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one Monte Carlo SNM sample for a cell with nominal margin
/// `nominal` under per-half Vth sigma `sigma`.
///
/// The two storage halves each receive an independent Gaussian Vth shift;
/// their *mismatch* erodes the margin at [`SNM_MISMATCH_SENSITIVITY`] per
/// volt, floored at zero (a fully collapsed butterfly curve). This is the
/// shared per-sample kernel behind both [`snm_yield`] and the fault-map
/// derivation in [`crate::faults`]; it consumes exactly two Gaussian
/// draws, keeping historical `snm_yield` streams bit-identical.
pub fn sample_snm(nominal: f64, sigma: f64, rng: &mut StdRng) -> f64 {
    let left = normal(rng) * sigma;
    let right = normal(rng) * sigma;
    let mismatch = (left - right).abs();
    (nominal - SNM_MISMATCH_SENSITIVITY * mismatch).max(0.0)
}

/// Runs a Monte Carlo SNM analysis of `cell` at `vdd`.
///
/// Each sample perturbs the two storage-node transistor pairs with
/// independent LER and WFV Vth shifts; the *mismatch* between the halves
/// erodes the SNM. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn snm_yield(
    cell: SramCell,
    vdd: f64,
    back_gate: BackGate,
    samples: usize,
    seed: u64,
) -> YieldResult {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let nominal = cell.snm(vdd, back_gate);
    let sigma = sigma_vth_total();

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min = f64::INFINITY;
    let mut pass = 0usize;
    for _ in 0..samples {
        // Mismatch between the two cell halves: difference of two
        // independent Vth shifts per half.
        let snm = sample_snm(nominal, sigma, &mut rng);
        sum += snm;
        sum_sq += snm * snm;
        if snm < min {
            min = snm;
        }
        if snm > SNM_FAIL_THRESHOLD {
            pass += 1;
        }
    }
    let mean = sum / samples as f64;
    let var = (sum_sq / samples as f64 - mean * mean).max(0.0);
    YieldResult {
        cell,
        vdd,
        samples,
        snm_mean: mean,
        snm_std: var.sqrt(),
        snm_min: min,
        yield_fraction: pass as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{NTV, STV};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 2000, 42);
        let b = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 2000, 42);
        assert_eq!(a, b);
        let c = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 2000, 43);
        assert_ne!(a.snm_mean, c.snm_mean);
    }

    #[test]
    fn snm_samples_are_bit_identical_for_fixed_seed() {
        // Stronger than comparing summary statistics: the raw per-sample
        // stream must reproduce bit for bit, because the fault maps in
        // `crate::faults` classify individual draws.
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            let nominal = SramCell::T8.snm(NTV, BackGate::Vdd);
            let sigma = sigma_vth_total();
            (0..1000)
                .map(|_| sample_snm(nominal, sigma, &mut rng))
                .collect()
        };
        let a = draw(42);
        let b = draw(42);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_ne!(draw(43), a);
    }

    #[test]
    fn eight_t_at_ntv_has_high_yield() {
        // The design decision of §IV-A: 8T cells are NTV-viable.
        let r = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 20_000, 7);
        assert!(r.yield_fraction > 0.80, "8T@NTV yield {}", r.yield_fraction);
        assert!(r.snm_mean > 0.06);
    }

    #[test]
    fn six_t_at_ntv_fails_badly() {
        // 6T nominal SNM at NTV is 0.036 V — under the failure margin even
        // before variation.
        let r = snm_yield(SramCell::T6, NTV, BackGate::Vdd, 20_000, 7);
        assert!(r.yield_fraction < 0.20, "6T@NTV yield {}", r.yield_fraction);
    }

    #[test]
    fn yield_improves_with_voltage() {
        let lo = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 20_000, 9);
        let hi = snm_yield(SramCell::T8, STV, BackGate::Vdd, 20_000, 9);
        assert!(hi.yield_fraction >= lo.yield_fraction);
        assert!(hi.snm_mean > lo.snm_mean);
    }

    #[test]
    fn yield_improves_with_transistor_count() {
        let t6 = snm_yield(SramCell::T6, NTV, BackGate::Vdd, 20_000, 11);
        let t8 = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 20_000, 11);
        let t10 = snm_yield(SramCell::T10, NTV, BackGate::Vdd, 20_000, 11);
        assert!(t8.yield_fraction > t6.yield_fraction);
        assert!(t10.yield_fraction >= t8.yield_fraction);
    }

    #[test]
    fn grounded_back_gate_costs_yield() {
        let on = snm_yield(SramCell::T8, STV, BackGate::Vdd, 20_000, 13);
        let off = snm_yield(SramCell::T8, STV, BackGate::Grounded, 20_000, 13);
        assert!(off.yield_fraction < on.yield_fraction);
    }

    #[test]
    fn stats_are_sane() {
        let r = snm_yield(SramCell::T8, STV, BackGate::Vdd, 5_000, 1);
        assert!(r.snm_min <= r.snm_mean);
        assert!(r.snm_std > 0.0);
        assert!(r.failures_ppm() >= 0.0);
        assert_eq!(r.samples, 5_000);
    }

    #[test]
    fn combined_sigma_is_quadrature_sum() {
        let s = sigma_vth_total();
        assert!((s - 0.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        snm_yield(SramCell::T8, NTV, BackGate::Vdd, 0, 0);
    }
}
