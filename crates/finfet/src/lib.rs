//! # prf-finfet — 7 nm FinFET device, SRAM, and array models
//!
//! The circuit-level substrate of the Pilot Register File reproduction.
//! The paper characterises its register files with Synopsys TCAD, HSpice
//! Monte Carlo, and FinCACTI; this crate provides analytic Rust equivalents
//! calibrated to every number the paper publishes:
//!
//! * [`device`] — dual-gate FinFET I–V with binary back-gate control
//!   (Table III ON currents; 3× NTV/STV delay; 9× back-gate drive ratio),
//! * [`delay`] — FO4 inverter-chain delay vs Vdd (Fig. 1),
//! * [`sram`] — 6T/8T/9T/10T cells with SNM vs voltage (Table III SNMs),
//! * [`montecarlo`] — LER + work-function-variation yield analysis
//!   (the §IV-A cell-selection study),
//! * [`faults`] — deterministic per-row stuck/weak fault maps derived from
//!   the Monte Carlo SNM distribution (consumed by the architectural
//!   repair policies in `prf-core`),
//! * [`mod@array`] — FinCACTI-like access-energy / leakage / area / timing
//!   estimator (Table IV; RFC port-scaling anchors of §V-D),
//! * [`cam`] — the swapping-table CAM (105/95/55 ps RTL anchors, §III-B).
//!
//! # Example
//!
//! ```rust
//! use prf_finfet::array::{characterize, ArraySpec};
//!
//! let srf = characterize(&ArraySpec::srf());
//! assert!((srf.access_energy_pj - 7.03).abs() < 0.1); // Table IV
//! ```

pub mod array;
pub mod cam;
pub mod delay;
pub mod device;
pub mod faults;
pub mod montecarlo;
pub mod sram;

pub use array::{
    characterize, sweep_voltage, ArrayCharacteristics, ArraySpec, VoltageMode, VoltagePoint,
};
pub use cam::{SwapTableCam, TechNode};
pub use delay::{chain_delay_ns, fig1_sweep, DelayPoint};
pub use device::{BackGate, FinFet, NTV, STV, VTH};
pub use faults::{
    CellHealth, FaultGeometry, FaultMap, FaultMapParseError, MAX_TEXT_ROWS, SNM_WEAK_THRESHOLD,
};
pub use montecarlo::{sample_snm, snm_yield, YieldResult};
pub use sram::SramCell;
