//! SRAM-array characterisation — the FinCACTI stand-in.
//!
//! Given an array specification (size, voltage, back-gate mode, ports,
//! crossbar banking, cell type) this module produces access energy, leakage
//! power, area, and access time. The model is analytic with correction
//! factors *fit to the paper's anchors*, so every number in Table IV and
//! the RFC port-scaling discussion (§V-D) is reproduced:
//!
//! | structure | size | access energy | leakage |
//! |-----------|------|---------------|---------|
//! | MRF @ STV | 256 KB | 14.9 pJ | 33.8 mW |
//! | SRF @ NTV | 224 KB | 7.03 pJ | 13.4 mW |
//! | FRF_high  | 32 KB  | 7.65 pJ | 7.28 mW |
//! | FRF_low   | 32 KB  | 5.25 pJ | 7.28 mW |
//!
//! plus: baseline area 0.2 mm² → proposed 0.214 mm² (< 10% overhead),
//! RFC at (R2,W1) ≈ 0.37× MRF energy, at (R8,W4) ≈ 3× MRF, and an 8-banked
//! RFC ≈ 1× MRF.
//!
//! Model shape: dynamic energy is affine in `sqrt(size)` (bitline/wordline
//! halves) times `V²`; leakage is affine in size (constant periphery term +
//! per-cell term) times the device model's DIBL-aware `Ioff(V)·V` scaling;
//! access time is affine in `sqrt(size)` times the device delay factor.

use crate::device::{BackGate, FinFet, ALPHA_ION, DIBL, N_SUB, STV, VT_THERMAL};
use crate::sram::SramCell;

/// Supply choice for an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoltageMode {
    /// Super-threshold (0.45 V).
    Stv,
    /// Near-threshold (0.3 V).
    Ntv,
}

impl VoltageMode {
    /// The supply voltage in volts.
    pub fn volts(self) -> f64 {
        match self {
            VoltageMode::Stv => crate::device::STV,
            VoltageMode::Ntv => crate::device::NTV,
        }
    }
}

// --- Fitted constants (see module docs; derivations in DESIGN.md) -------

/// Dynamic energy: `E = (A + B*sqrt(size_kb)) * (V/STV)^2` pJ.
const ENERGY_A_PJ: f64 = 3.684;
const ENERGY_B_PJ: f64 = 0.701;
/// NTV arrays use upsized cells; costs a little extra switched capacitance.
const NTV_CELL_ENERGY_FACTOR: f64 = 1.115_825;
/// Grounding the back gate halves gate capacitance on the controlled part
/// of the path: net access-energy factor (Table IV: 5.25/7.65).
const BG_ENERGY_FACTOR: f64 = 5.25 / 7.65;

/// Leakage: `P = (A + B*size_kb) * leak_scale(V)` mW, with the constant
/// term modelling periphery (decoders, sense amps).
const LEAK_A_MW: f64 = 3.4914;
const LEAK_B_MW: f64 = 0.118_392_9;
/// Upsized NTV cells leak slightly more per cell.
const NTV_CELL_LEAK_FACTOR: f64 = 1.015_38;

/// Access time: `t = (A + B*sqrt(size_kb)) * delay_rel(V)` ns.
const TIME_A_NS: f64 = 0.0309;
const TIME_B_NS: f64 = 0.008_68;
/// Fraction of the access path whose devices are back-gate controlled
/// (cell read stacks; the decoder, wordline drivers and sense amps stay
/// dual-gate); fit so FRF_low is exactly 2× FRF_high, the paper's 2-cycle
/// vs 1-cycle design point, given the device model's ~7.9× slowdown of a
/// fully back-gate-controlled stage.
const BG_PATH_FRACTION: f64 = 0.144_01;

/// Area: proportional to capacity, anchored at 0.2 mm² for 256 KB.
const AREA_PER_KB_MM2: f64 = 0.2 / 256.0;
/// NTV arrays: upsized cells.
const NTV_AREA_FACTOR: f64 = 1.05;
/// Back-gate wiring + mode-signal buffers on a back-gate-controlled array.
const BG_AREA_FACTOR: f64 = 1.21;

/// Port scaling beyond the (R2,W1) baseline: wire-dominated quadratic.
const PORT_K: f64 = 0.2086;
/// Crossbar overhead per extra bank in a banked-multiport (RFC) design.
const XBAR_K: f64 = 0.156;

/// Specification of one SRAM array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArraySpec {
    /// Capacity in kilobytes.
    pub size_kb: f64,
    /// Supply voltage.
    pub voltage: VoltageMode,
    /// Back-gate state of the controlled devices.
    pub back_gate: BackGate,
    /// Read ports (baseline register-file bank: 2).
    pub read_ports: u32,
    /// Write ports (baseline register-file bank: 1).
    pub write_ports: u32,
    /// Crossbar banking factor (1 = plain array). Used by the RFC
    /// scalability study, *not* by the main RF (whose banks are
    /// independent arrays accessed one at a time).
    pub crossbar_banks: u32,
    /// SRAM cell design.
    pub cell: SramCell,
}

impl ArraySpec {
    /// A plain 8T register-file array at the given size and voltage.
    pub fn rf(size_kb: f64, voltage: VoltageMode) -> Self {
        ArraySpec {
            size_kb,
            voltage,
            back_gate: BackGate::Vdd,
            read_ports: 2,
            write_ports: 1,
            crossbar_banks: 1,
            cell: SramCell::T8,
        }
    }

    /// The paper's 256 KB monolithic MRF at STV.
    pub fn mrf_stv() -> Self {
        Self::rf(256.0, VoltageMode::Stv)
    }

    /// The 256 KB monolithic MRF run at NTV.
    pub fn mrf_ntv() -> Self {
        Self::rf(256.0, VoltageMode::Ntv)
    }

    /// The 224 KB SRF partition (always NTV).
    pub fn srf() -> Self {
        Self::rf(224.0, VoltageMode::Ntv)
    }

    /// The 32 KB FRF in high-power mode (back gate = Vdd).
    pub fn frf_high() -> Self {
        ArraySpec {
            ..Self::rf(32.0, VoltageMode::Stv)
        }
    }

    /// The 32 KB FRF in low-power mode (back gate grounded).
    pub fn frf_low() -> Self {
        ArraySpec {
            back_gate: BackGate::Grounded,
            ..Self::rf(32.0, VoltageMode::Stv)
        }
    }

    /// A register-file cache holding `entries_per_warp` registers for
    /// `active_warps` warps (32 lanes × 4 bytes per register), with the
    /// given port and crossbar-bank configuration.
    ///
    /// In a crossbar-banked RFC each *access* activates one bank of
    /// `total/banks` capacity plus the crossbar (`crossbar_banks`
    /// multiplier below); `size_kb` here is therefore the per-bank size.
    /// This is the reading under which the paper's Fig. 13 numbers (RFC
    /// close to partitioned at the small configuration, ~10% saving for
    /// the large RFC over an STV MRF) are self-consistent.
    pub fn rfc(
        entries_per_warp: u32,
        active_warps: u32,
        read_ports: u32,
        write_ports: u32,
        crossbar_banks: u32,
    ) -> Self {
        let total_kb = f64::from(entries_per_warp) * f64::from(active_warps) * 32.0 * 4.0 / 1024.0;
        ArraySpec {
            size_kb: total_kb / f64::from(crossbar_banks.max(1)),
            voltage: VoltageMode::Stv,
            back_gate: BackGate::Vdd,
            read_ports,
            write_ports,
            crossbar_banks,
            cell: SramCell::T8,
        }
    }
}

/// Characterised array metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayCharacteristics {
    /// Energy per access (pJ).
    pub access_energy_pj: f64,
    /// Leakage power (mW).
    pub leakage_mw: f64,
    /// Area (mm²).
    pub area_mm2: f64,
    /// Access time (ns).
    pub access_time_ns: f64,
}

/// Port-count multiplier over the (R2,W1) baseline.
fn port_factor(read_ports: u32, write_ports: u32) -> f64 {
    let excess = (f64::from(read_ports) - 2.0).max(0.0) + (f64::from(write_ports) - 1.0).max(0.0);
    (1.0 + PORT_K * excess).powi(2)
}

/// Crossbar-banking multiplier.
fn xbar_factor(banks: u32) -> f64 {
    1.0 + XBAR_K * (f64::from(banks.max(1)) - 1.0)
}

/// Leakage scaling vs the STV reference: `Ioff(V)·V / (Ioff(STV)·STV)`.
fn leak_scale(vdd: f64) -> f64 {
    let dibl = ((DIBL * (vdd - STV)) / (N_SUB * VT_THERMAL) * ALPHA_ION).exp();
    dibl * vdd / STV
}

/// Characterises an array.
///
/// # Panics
///
/// Panics if the size is not positive or a port count is zero.
pub fn characterize(spec: &ArraySpec) -> ArrayCharacteristics {
    assert!(spec.size_kb > 0.0, "array size must be positive");
    assert!(
        spec.read_ports >= 1 && spec.write_ports >= 1,
        "need at least R1W1"
    );
    let v = spec.voltage.volts();
    let sqrt_kb = spec.size_kb.sqrt();
    let cell_area = spec.cell.area_rel();

    // Dynamic energy.
    let mut energy = (ENERGY_A_PJ + ENERGY_B_PJ * sqrt_kb) * (v / STV).powi(2);
    if spec.voltage == VoltageMode::Ntv {
        energy *= NTV_CELL_ENERGY_FACTOR;
    }
    if spec.back_gate == BackGate::Grounded {
        energy *= BG_ENERGY_FACTOR;
    }
    energy *= port_factor(spec.read_ports, spec.write_ports);
    energy *= xbar_factor(spec.crossbar_banks);
    energy *= cell_area.sqrt(); // bigger cells ⇒ longer, fatter bitlines

    // Leakage.
    let mut leak = (LEAK_A_MW + LEAK_B_MW * spec.size_kb) * leak_scale(v);
    if spec.voltage == VoltageMode::Ntv {
        leak *= NTV_CELL_LEAK_FACTOR;
    }
    leak *= cell_area;

    // Access time.
    let dev = FinFet {
        back_gate: BackGate::Vdd,
    };
    let mut time = (TIME_A_NS + TIME_B_NS * sqrt_kb) * dev.inverter_delay_rel(v);
    if spec.back_gate == BackGate::Grounded {
        // Only the BG-controlled fraction of the path slows down; the
        // controlled devices lose drive but also half their capacitance.
        let bg_dev = FinFet {
            back_gate: BackGate::Grounded,
        };
        let slow = bg_dev.inverter_delay_rel(v) / dev.inverter_delay_rel(v);
        time *= 1.0 - BG_PATH_FRACTION + BG_PATH_FRACTION * slow;
    }
    time *= 1.0 + 0.1 * (port_factor(spec.read_ports, spec.write_ports) - 1.0);

    // Area.
    let mut area = AREA_PER_KB_MM2 * spec.size_kb * cell_area;
    if spec.voltage == VoltageMode::Ntv {
        area *= NTV_AREA_FACTOR;
    }
    if spec.back_gate == BackGate::Grounded {
        area *= BG_AREA_FACTOR;
    }
    area *= port_factor(spec.read_ports, spec.write_ports).sqrt();
    area *= xbar_factor(spec.crossbar_banks).sqrt();

    ArrayCharacteristics {
        access_energy_pj: energy,
        leakage_mw: leak,
        area_mm2: area,
        access_time_ns: time,
    }
}

/// One point of a continuous voltage sweep of an RF array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltagePoint {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Access energy (pJ), scaled as V² from the STV calibration.
    pub access_energy_pj: f64,
    /// Leakage power (mW), with DIBL scaling.
    pub leakage_mw: f64,
    /// Access time (ns), from the device delay model.
    pub access_time_ns: f64,
}

impl VoltagePoint {
    /// Access-energy × access-time product (pJ·ns). A performance-weighted
    /// metric; its minimum sits close to STV.
    pub fn energy_delay(&self) -> f64 {
        self.access_energy_pj * self.access_time_ns
    }

    /// Total energy per operation (pJ): dynamic access energy plus the
    /// leakage burned while the (slow) access completes
    /// (`1 mW × 1 ns = 1 pJ`). This is the classic near-threshold-computing
    /// figure of merit: below Vth the leakage-over-long-delay term blows
    /// up, above NTV the V² dynamic term does, and the minimum falls in
    /// the near-threshold region the paper operates the SRF in.
    pub fn energy_per_op(&self) -> f64 {
        self.access_energy_pj + self.leakage_mw * self.access_time_ns
    }
}

/// Sweeps an 8T RF array of `size_kb` across supply voltages — the
/// continuous version of the paper's STV/NTV design points, showing why
/// 0.3 V is a sweet spot.
///
/// # Panics
///
/// Panics if the range is inverted or `steps < 2`.
pub fn sweep_voltage(size_kb: f64, v_lo: f64, v_hi: f64, steps: usize) -> Vec<VoltagePoint> {
    assert!(steps >= 2, "need at least two sweep points");
    assert!(
        v_hi > v_lo && v_lo > 0.0,
        "voltage range must be increasing and positive"
    );
    let sqrt_kb = size_kb.sqrt();
    let dev = FinFet {
        back_gate: BackGate::Vdd,
    };
    (0..steps)
        .map(|i| {
            let vdd = v_lo + (v_hi - v_lo) * i as f64 / (steps - 1) as f64;
            let energy = (ENERGY_A_PJ + ENERGY_B_PJ * sqrt_kb) * (vdd / STV).powi(2);
            let leak = (LEAK_A_MW + LEAK_B_MW * size_kb) * leak_scale(vdd);
            let time = (TIME_A_NS + TIME_B_NS * sqrt_kb) * dev.inverter_delay_rel(vdd);
            VoltagePoint {
                vdd,
                access_energy_pj: energy,
                leakage_mw: leak,
                access_time_ns: time,
            }
        })
        .collect()
}

/// The proposed partitioned register file's total area: SRF (NTV, upsized)
/// plus FRF (back-gate controlled). The paper reports 0.214 mm² vs the
/// 0.2 mm² baseline — "less than 10% area overhead".
pub fn partitioned_rf_area_mm2() -> f64 {
    let srf = ArraySpec {
        back_gate: BackGate::Vdd,
        ..ArraySpec::srf()
    };
    // Note the FRF area includes back-gate wiring even in high mode —
    // the wiring exists regardless of the mode signal's value.
    let frf = ArraySpec::frf_low();
    characterize(&srf).area_mm2 + characterize(&frf).area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn table4_mrf_stv() {
        let c = characterize(&ArraySpec::mrf_stv());
        assert!(
            close(c.access_energy_pj, 14.9, 0.005),
            "{}",
            c.access_energy_pj
        );
        assert!(close(c.leakage_mw, 33.8, 0.005), "{}", c.leakage_mw);
    }

    #[test]
    fn table4_srf() {
        let c = characterize(&ArraySpec::srf());
        assert!(
            close(c.access_energy_pj, 7.03, 0.01),
            "{}",
            c.access_energy_pj
        );
        assert!(close(c.leakage_mw, 13.4, 0.01), "{}", c.leakage_mw);
    }

    #[test]
    fn table4_frf_high_and_low() {
        let hi = characterize(&ArraySpec::frf_high());
        let lo = characterize(&ArraySpec::frf_low());
        assert!(
            close(hi.access_energy_pj, 7.65, 0.01),
            "{}",
            hi.access_energy_pj
        );
        assert!(
            close(lo.access_energy_pj, 5.25, 0.01),
            "{}",
            lo.access_energy_pj
        );
        assert!(close(hi.leakage_mw, 7.28, 0.01), "{}", hi.leakage_mw);
        // Table IV lists the same leakage for both FRF modes.
        assert!(close(lo.leakage_mw, hi.leakage_mw, 1e-12));
    }

    #[test]
    fn leakage_fractions_match_section_vb() {
        // "The FRF leakage power is almost 21.5% of the MRF baseline" and
        // "the SRF leakage power is almost 39.7%".
        let mrf = characterize(&ArraySpec::mrf_stv()).leakage_mw;
        let frf = characterize(&ArraySpec::frf_high()).leakage_mw;
        let srf = characterize(&ArraySpec::srf()).leakage_mw;
        assert!(close(frf / mrf, 0.215, 0.02), "{}", frf / mrf);
        assert!(close(srf / mrf, 0.397, 0.02), "{}", srf / mrf);
        // Total leakage saving ≈ 39%.
        let saving = 1.0 - (frf + srf) / mrf;
        assert!(close(saving, 0.39, 0.03), "{saving}");
    }

    #[test]
    fn frf_access_time_meets_cycle_time() {
        // §V-B: "the FRF_high access time is 0.08ns".
        let hi = characterize(&ArraySpec::frf_high());
        assert!(
            close(hi.access_time_ns, 0.08, 0.01),
            "{}",
            hi.access_time_ns
        );
        // FRF_low is the 2-cycle design point: ~2x FRF_high.
        let lo = characterize(&ArraySpec::frf_low());
        assert!(close(lo.access_time_ns / hi.access_time_ns, 2.0, 0.02));
    }

    #[test]
    fn srf_fits_three_cycles_at_900mhz() {
        let srf = characterize(&ArraySpec::srf());
        let mrf = characterize(&ArraySpec::mrf_stv());
        // NTV tripling on top of the size effect.
        assert!(srf.access_time_ns > 2.0 * mrf.access_time_ns);
        assert!(
            srf.access_time_ns < 3.0 * 1.111,
            "must fit in 3 cycles at 900 MHz"
        );
    }

    #[test]
    fn area_overhead_under_10_percent() {
        let base = characterize(&ArraySpec::mrf_stv()).area_mm2;
        let proposed = partitioned_rf_area_mm2();
        assert!(close(base, 0.2, 0.005), "{base}");
        assert!(close(proposed, 0.214, 0.01), "{proposed}");
        assert!((proposed - base) / base < 0.10);
    }

    #[test]
    fn rfc_r2w1_energy_is_about_037x_mrf() {
        // §V-D: 6 registers/warp, (R2,W1) → 0.37× MRF. The RFC there
        // serves the two-level scheduler's 8 active warps.
        let mrf = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
        let rfc = characterize(&ArraySpec::rfc(6, 8, 2, 1, 1)).access_energy_pj;
        assert!(close(rfc / mrf, 0.37, 0.03), "{}", rfc / mrf);
    }

    #[test]
    fn rfc_r8w4_energy_is_about_3x_mrf() {
        let mrf = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
        let rfc = characterize(&ArraySpec::rfc(6, 8, 8, 4, 1)).access_energy_pj;
        assert!(close(rfc / mrf, 3.0, 0.03), "{}", rfc / mrf);
    }

    #[test]
    fn rfc_8_banked_energy_approaches_mrf() {
        // §V-D: banking erodes the RFC's energy advantage — the 8-banked
        // 24 KB RFC's access energy (bank + crossbar) lands at a large
        // fraction of an MRF access, and a full multi-operand instruction
        // through the crossbar exceeds it. (The paper states the 8-banked
        // RFC access energy is "nearly the same" as the MRF's, while its
        // Fig. 13 still shows ~10% saving for this design over an STV MRF;
        // the per-bank-plus-crossbar reading reconciles the two.)
        let mrf = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
        let rfc = characterize(&ArraySpec::rfc(6, 32, 2, 1, 8)).access_energy_pj;
        assert!((0.6..1.1).contains(&(rfc / mrf)), "{}", rfc / mrf);
        // Far above the unbanked small-RFC sweet spot...
        let small = characterize(&ArraySpec::rfc(6, 8, 2, 1, 1)).access_energy_pj;
        assert!(rfc > 1.5 * small);
    }

    #[test]
    fn energy_monotone_in_size_and_voltage() {
        let small = characterize(&ArraySpec::rf(32.0, VoltageMode::Stv));
        let big = characterize(&ArraySpec::rf(128.0, VoltageMode::Stv));
        assert!(big.access_energy_pj > small.access_energy_pj);
        assert!(big.leakage_mw > small.leakage_mw);
        let ntv = characterize(&ArraySpec::rf(128.0, VoltageMode::Ntv));
        assert!(ntv.access_energy_pj < big.access_energy_pj);
        assert!(ntv.leakage_mw < big.leakage_mw);
        assert!(ntv.access_time_ns > big.access_time_ns);
    }

    #[test]
    fn rfc_spec_size_math() {
        // 6 regs x 16 warps x 32 threads x 4 B = 12 KB.
        assert!((ArraySpec::rfc(6, 16, 2, 1, 1).size_kb - 12.0).abs() < 1e-12);
        // Banked: per-bank capacity.
        assert!((ArraySpec::rfc(6, 16, 2, 1, 4).size_kb - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_rejected() {
        characterize(&ArraySpec::rf(0.0, VoltageMode::Stv));
    }

    #[test]
    fn voltage_sweep_is_monotone_in_each_axis() {
        let pts = sweep_voltage(256.0, 0.2, 0.6, 41);
        assert_eq!(pts.len(), 41);
        for w in pts.windows(2) {
            assert!(
                w[1].access_energy_pj > w[0].access_energy_pj,
                "energy rises with V"
            );
            assert!(w[1].leakage_mw > w[0].leakage_mw, "leakage rises with V");
            assert!(
                w[1].access_time_ns < w[0].access_time_ns,
                "delay falls with V"
            );
        }
    }

    #[test]
    fn voltage_sweep_matches_calibration_points() {
        let pts = sweep_voltage(256.0, 0.30, 0.45, 16);
        let stv = pts.last().unwrap();
        assert!(
            close(stv.access_energy_pj, 14.9, 0.01),
            "{}",
            stv.access_energy_pj
        );
        assert!(close(stv.leakage_mw, 33.8, 0.01), "{}", stv.leakage_mw);
    }

    #[test]
    fn energy_per_op_sweet_spot_is_near_threshold() {
        // Total energy/op bottoms out between Vth (0.23) and well below
        // STV (0.45) — the premise of operating the SRF at 0.3 V.
        let pts = sweep_voltage(224.0, 0.20, 0.60, 81);
        let best = pts
            .iter()
            .min_by(|a, b| a.energy_per_op().total_cmp(&b.energy_per_op()))
            .unwrap();
        assert!(
            (0.24..0.38).contains(&best.vdd),
            "sweet spot at {:.2} V should be near-threshold",
            best.vdd
        );
        // And it beats both endpoints clearly.
        assert!(best.energy_per_op() < pts[0].energy_per_op());
        assert!(best.energy_per_op() < pts.last().unwrap().energy_per_op());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_rejects_single_point() {
        sweep_voltage(32.0, 0.3, 0.4, 1);
    }
}
