//! Analytic 7 nm dual-gate (DG) FinFET device model.
//!
//! The paper characterises its devices with Synopsys TCAD + HSpice; we use
//! a smooth EKV-style analytic I–V model whose constants are *fit to the
//! paper's published anchors* (Table III and §I/§IV):
//!
//! * effective gate length 7 nm with 1.5 nm underlap per side,
//! * `Vth` = 0.23 V, NTV = 0.3 V, STV = 0.45 V,
//! * ON current 2.372 mA/µm at STV with both gates on,
//! * ON current 0.7505 mA/µm at NTV,
//! * ON current 0.2427 mA/µm at STV with the back gate disabled
//!   (≈ 9.8× lower drive than dual-gate — "the current is 9 times larger
//!   than enabling just the front gate", §V-A),
//! * gate capacitance halves when the back gate is disabled,
//! * inverter delay triples from STV to NTV (§IV-B: "3X longer access
//!   delay").
//!
//! The EKV softplus interpolation keeps the model smooth from subthreshold
//! (exponential) through strong inversion (power law), which is what the
//! Fig. 1 delay-vs-Vdd sweep needs.

/// Near-threshold supply voltage used throughout the paper (volts).
pub const NTV: f64 = 0.30;

/// Super-threshold supply voltage used throughout the paper (volts).
pub const STV: f64 = 0.45;

/// Device threshold voltage (volts), from Fig. 1's caption.
pub const VTH: f64 = 0.23;

/// Thermal voltage at 300 K (volts).
pub const VT_THERMAL: f64 = 0.026;

/// Subthreshold slope factor `n` (dimensionless).
pub const N_SUB: f64 = 1.5;

/// Drive-current exponent fit to the Table III ON-current ratio
/// (STV/NTV = 3.161).
pub const ALPHA_ION: f64 = 1.082;

/// Delay-effective drive exponent fit so an inverter slows 3.0× from STV
/// to NTV (captures the slew degradation that plain CV/I misses).
pub const ALPHA_DELAY: f64 = 1.4136;

/// Threshold shift when the back gate is grounded (volts), fit to the
/// Table III front-gate-only ON current.
pub const VTH_BG_OFF_SHIFT: f64 = 0.181_54;

/// DIBL coefficient: leakage grows `exp(DIBL * Vdd / (n * vT))`.
pub const DIBL: f64 = 0.10;

/// Table III anchor: dual-gate ON current at STV (A/µm).
pub const ION_STV_ANCHOR: f64 = 2.372e-3;

/// Table III anchor: ON current at NTV (A/µm).
pub const ION_NTV_ANCHOR: f64 = 7.505e-4;

/// Table III anchor: front-gate-only ON current at STV (A/µm).
pub const ION_STV_BG_OFF_ANCHOR: f64 = 2.427e-4;

/// Back-gate bias state of a DG FinFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackGate {
    /// Back gate tied to Vdd: full drive, full gate capacitance.
    #[default]
    Vdd,
    /// Back gate grounded: ~half the gate capacitance, higher Vth, much
    /// lower drive and leakage — the paper's `FRF_low` enabler.
    Grounded,
}

/// Smooth EKV interpolation: `softplus((v - vth) / (n * vT))`.
fn ekv_g(vdd: f64, vth: f64) -> f64 {
    let x = (vdd - vth) / (N_SUB * VT_THERMAL);
    // ln(1 + e^x), computed stably for large |x|.
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// A 7 nm DG FinFET with a controllable back gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinFet {
    /// Back-gate state.
    pub back_gate: BackGate,
}

impl FinFet {
    /// A device with the back gate enabled (normal dual-gate operation).
    pub fn dual_gate() -> Self {
        FinFet {
            back_gate: BackGate::Vdd,
        }
    }

    /// A device with the back gate grounded (low-power mode).
    pub fn front_gate_only() -> Self {
        FinFet {
            back_gate: BackGate::Grounded,
        }
    }

    /// Effective threshold voltage, including the back-gate shift.
    pub fn vth_eff(&self) -> f64 {
        match self.back_gate {
            BackGate::Vdd => VTH,
            BackGate::Grounded => VTH + VTH_BG_OFF_SHIFT,
        }
    }

    /// Relative gate capacitance (1.0 dual-gate, 0.5 front-gate-only).
    pub fn gate_cap_rel(&self) -> f64 {
        match self.back_gate {
            BackGate::Vdd => 1.0,
            BackGate::Grounded => 0.5,
        }
    }

    /// Relative channel-width factor (half the channel conducts with the
    /// back gate off).
    fn drive_rel(&self) -> f64 {
        match self.back_gate {
            BackGate::Vdd => 1.0,
            BackGate::Grounded => 0.5,
        }
    }

    /// ON current in A/µm at supply `vdd` (gate at `vdd`).
    pub fn ion(&self, vdd: f64) -> f64 {
        // I0 is set so that the dual-gate STV anchor is reproduced exactly.
        let i0 = ION_STV_ANCHOR / ekv_g(STV, VTH).powf(ALPHA_ION);
        i0 * self.drive_rel() * ekv_g(vdd, self.vth_eff()).powf(ALPHA_ION)
    }

    /// OFF (leakage) current in A/µm at supply `vdd` (gate at 0), relative
    /// model with DIBL: used for leakage *scaling*; absolute leakage power
    /// is calibrated at the array level.
    pub fn ioff(&self, vdd: f64) -> f64 {
        let i0 = ION_STV_ANCHOR / ekv_g(STV, VTH).powf(ALPHA_ION);
        let x = (DIBL * vdd - self.vth_eff()) / (N_SUB * VT_THERMAL);
        i0 * self.drive_rel() * x.exp().powf(ALPHA_ION)
    }

    /// Delay-effective drive (arbitrary units) — the denominator of the
    /// CV/I delay model, with the slew-aware exponent.
    pub fn drive_delay(&self, vdd: f64) -> f64 {
        self.drive_rel() * ekv_g(vdd, self.vth_eff()).powf(ALPHA_DELAY)
    }

    /// Inverter delay at `vdd`, *relative* to a dual-gate inverter at STV.
    pub fn inverter_delay_rel(&self, vdd: f64) -> f64 {
        let ref_dev = FinFet::dual_gate();
        let reference = STV * ref_dev.gate_cap_rel() / ref_dev.drive_delay(STV);
        (vdd * self.gate_cap_rel() / self.drive_delay(vdd)) / reference
    }
}

impl Default for FinFet {
    fn default() -> Self {
        Self::dual_gate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn ion_matches_table3_stv() {
        let d = FinFet::dual_gate();
        assert!(close(d.ion(STV), ION_STV_ANCHOR, 1e-9), "{}", d.ion(STV));
    }

    #[test]
    fn ion_matches_table3_ntv() {
        let d = FinFet::dual_gate();
        assert!(
            close(d.ion(NTV), ION_NTV_ANCHOR, 0.005),
            "got {}, want {ION_NTV_ANCHOR}",
            d.ion(NTV)
        );
    }

    #[test]
    fn ion_matches_table3_back_gate_off() {
        let d = FinFet::front_gate_only();
        assert!(
            close(d.ion(STV), ION_STV_BG_OFF_ANCHOR, 0.005),
            "got {}, want {ION_STV_BG_OFF_ANCHOR}",
            d.ion(STV)
        );
    }

    #[test]
    fn dual_gate_drive_is_about_9x_front_gate_only() {
        // §V-A: "the current is 9 times larger than enabling just the
        // front gate".
        let ratio = FinFet::dual_gate().ion(STV) / FinFet::front_gate_only().ion(STV);
        assert!((9.0..10.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ntv_delay_is_3x_stv() {
        let d = FinFet::dual_gate();
        let ratio = d.inverter_delay_rel(NTV);
        assert!(
            close(ratio, 3.0, 0.01),
            "NTV/STV delay ratio {ratio}, want 3.0"
        );
        assert!(close(d.inverter_delay_rel(STV), 1.0, 1e-12));
    }

    #[test]
    fn delay_explodes_in_subthreshold() {
        let d = FinFet::dual_gate();
        // Fig. 1: delay grows steeply below Vth.
        assert!(d.inverter_delay_rel(0.20) > 10.0);
        assert!(d.inverter_delay_rel(0.15) > d.inverter_delay_rel(0.20) * 3.0);
    }

    #[test]
    fn delay_monotonically_decreases_with_vdd() {
        let d = FinFet::dual_gate();
        let mut prev = f64::INFINITY;
        let mut v = 0.15;
        while v <= 0.6 {
            let t = d.inverter_delay_rel(v);
            assert!(t < prev, "delay must fall as Vdd rises (v={v})");
            prev = t;
            v += 0.01;
        }
    }

    #[test]
    fn back_gate_off_reduces_capacitance_and_leakage() {
        let on = FinFet::dual_gate();
        let off = FinFet::front_gate_only();
        assert_eq!(off.gate_cap_rel(), 0.5);
        assert!(
            off.ioff(STV) < on.ioff(STV) / 10.0,
            "grounded back gate slashes leakage"
        );
    }

    #[test]
    fn leakage_falls_with_voltage() {
        let d = FinFet::dual_gate();
        assert!(d.ioff(NTV) < d.ioff(STV));
        // DIBL: ratio matches exp model.
        let ratio = d.ioff(STV) / d.ioff(NTV);
        let expect = ((DIBL * (STV - NTV)) / (N_SUB * VT_THERMAL) * ALPHA_ION).exp();
        assert!((ratio - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn vth_eff_reflects_back_gate() {
        assert_eq!(FinFet::dual_gate().vth_eff(), VTH);
        assert!(FinFet::front_gate_only().vth_eff() > VTH + 0.15);
    }
}
