//! Gate- and chain-level delay: reproduces the paper's Fig. 1
//! ("Delay of 40-stage FO4 inverter chain vs. Vdd for 7 nm FinFET
//! technology with Vth = 0.23 V").

use crate::device::{BackGate, FinFet};

/// FO4 (fan-out-of-4) inverter stage delay at STV, in nanoseconds.
///
/// Absolute calibration point for the 7 nm library; the paper only commits
/// to *relative* numbers (3× NTV/STV), so we pin the STV FO4 stage at a
/// representative 2.5 ps.
pub const FO4_STAGE_DELAY_STV_NS: f64 = 0.0025;

/// Number of stages in the paper's Fig. 1 chain.
pub const FIG1_CHAIN_STAGES: usize = 40;

/// Delay of one FO4 inverter stage at supply `vdd` (ns).
pub fn fo4_stage_delay_ns(vdd: f64, back_gate: BackGate) -> f64 {
    let dev = FinFet { back_gate };
    FO4_STAGE_DELAY_STV_NS * dev.inverter_delay_rel(vdd)
}

/// Delay of an `stages`-long FO4 inverter chain at supply `vdd` (ns).
pub fn chain_delay_ns(stages: usize, vdd: f64, back_gate: BackGate) -> f64 {
    stages as f64 * fo4_stage_delay_ns(vdd, back_gate)
}

/// One point of the Fig. 1 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPoint {
    /// Supply voltage (V).
    pub vdd: f64,
    /// 40-stage chain delay (ns).
    pub delay_ns: f64,
}

/// Produces the Fig. 1 curve: 40-stage FO4 chain delay for `vdd` from
/// `v_start` to `v_end` in `steps` uniform steps (inclusive).
///
/// # Panics
///
/// Panics if `steps` < 2 or the voltage range is inverted.
pub fn fig1_sweep(v_start: f64, v_end: f64, steps: usize) -> Vec<DelayPoint> {
    assert!(steps >= 2, "need at least two sweep points");
    assert!(v_end > v_start, "voltage range must be increasing");
    (0..steps)
        .map(|i| {
            let vdd = v_start + (v_end - v_start) * i as f64 / (steps - 1) as f64;
            DelayPoint {
                vdd,
                delay_ns: chain_delay_ns(FIG1_CHAIN_STAGES, vdd, BackGate::Vdd),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{NTV, STV};

    #[test]
    fn stv_chain_delay_is_40_stages() {
        let d = chain_delay_ns(FIG1_CHAIN_STAGES, STV, BackGate::Vdd);
        assert!((d - 40.0 * FO4_STAGE_DELAY_STV_NS).abs() < 1e-12);
    }

    #[test]
    fn ntv_chain_is_3x_stv() {
        let stv = chain_delay_ns(40, STV, BackGate::Vdd);
        let ntv = chain_delay_ns(40, NTV, BackGate::Vdd);
        assert!((ntv / stv - 3.0).abs() < 0.03, "ratio {}", ntv / stv);
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let pts = fig1_sweep(0.15, 0.6, 46);
        assert_eq!(pts.len(), 46);
        for w in pts.windows(2) {
            assert!(w[1].delay_ns < w[0].delay_ns);
        }
        assert!((pts[0].vdd - 0.15).abs() < 1e-12);
        assert!((pts[45].vdd - 0.6).abs() < 1e-12);
    }

    #[test]
    fn subthreshold_much_slower_than_ntv() {
        // Fig. 1's point: NTV is a sweet spot — far faster than
        // subthreshold, moderately slower than STV.
        let sub = chain_delay_ns(40, 0.18, BackGate::Vdd);
        let ntv = chain_delay_ns(40, NTV, BackGate::Vdd);
        assert!(sub / ntv > 8.0, "subthreshold/NTV = {}", sub / ntv);
    }

    #[test]
    fn back_gate_off_inverter_is_much_slower() {
        // A *fully* back-gate-controlled inverter loses ~9.8x drive for
        // only 2x capacitance — far slower than even NTV operation. The
        // FRF_low mode is nonetheless only 2x slower because just the cell
        // read stacks are back-gate controlled (see
        // `array::BG_PATH_FRACTION`); this test pins the device-level
        // behaviour the array model builds on.
        let high = fo4_stage_delay_ns(STV, BackGate::Vdd);
        let low = fo4_stage_delay_ns(STV, BackGate::Grounded);
        let ntv = fo4_stage_delay_ns(NTV, BackGate::Vdd);
        assert!(low > ntv, "full BG-off is slower than NTV");
        assert!(
            low / high > 5.0 && low / high < 12.0,
            "ratio {}",
            low / high
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_rejects_single_point() {
        fig1_sweep(0.2, 0.4, 1);
    }
}
