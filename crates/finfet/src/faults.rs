//! Deterministic, seedable fault maps derived from the Monte Carlo SNM
//! distribution.
//!
//! The §IV-A yield study says *how many* cells fail at a given supply; a
//! [`FaultMap`] says *which ones*, so the architectural layers can react.
//! Each register-file row is classified from per-cell SNM draws at the
//! chosen Vdd:
//!
//! * [`CellHealth::Stuck`] — some cell's SNM collapsed to zero: the row
//!   cannot hold data at this supply and must be repaired at *any* voltage,
//! * [`CellHealth::Weak`] — some cell's SNM fell below half the failure
//!   margin: the row is unsafe in low-voltage partitions (MRF@NTV,
//!   FRF@NTV, SRF) but fine at STV,
//! * [`CellHealth::Healthy`] — every sampled cell clears both bars.
//!
//! Classification is a pure function of `(seed, bank, row)` — each row owns
//! an independent RNG stream — so maps are bit-identical no matter how many
//! threads build or consume them, and a map can be regenerated from its
//! header alone. Maps also serialise to a small run-length-encoded text
//! artifact ([`FaultMap::to_text`]) so a campaign can pin the exact fault
//! pattern it ran against.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::device::BackGate;
use crate::montecarlo::{sample_snm, sigma_vth_total};
use crate::sram::{SramCell, SNM_FAIL_THRESHOLD};

/// SNM below this (volts) marks a cell *weak*: unsafe at low voltage.
/// Half the yield study's failure margin — the cell still holds data with
/// STV-grade noise immunity but has no margin left for NTV operation.
pub const SNM_WEAK_THRESHOLD: f64 = SNM_FAIL_THRESHOLD / 2.0;

/// Health of one register-file row (worst sampled cell wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellHealth {
    /// All sampled cells have usable margin at every supported voltage.
    Healthy,
    /// At least one cell is margin-less at low voltage; the row is only
    /// safe in STV-class partitions.
    Weak,
    /// At least one cell's SNM collapsed to zero; the row is unusable and
    /// must be repaired regardless of voltage.
    Stuck,
}

impl CellHealth {
    /// Single-letter code used by the text serialisation.
    fn code(self) -> char {
        match self {
            CellHealth::Healthy => 'H',
            CellHealth::Weak => 'W',
            CellHealth::Stuck => 'S',
        }
    }

    fn from_code(c: char) -> Option<CellHealth> {
        match c {
            'H' => Some(CellHealth::Healthy),
            'W' => Some(CellHealth::Weak),
            'S' => Some(CellHealth::Stuck),
            _ => None,
        }
    }
}

/// Shape of the register-file array a [`FaultMap`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultGeometry {
    /// Register-file banks.
    pub banks: usize,
    /// Rows per bank (one row = one warp-register entry).
    pub rows_per_bank: usize,
    /// Cells sampled per row (one per SIMD lane; the worst draw classifies
    /// the row).
    pub cells_per_row: usize,
}

impl FaultGeometry {
    /// The single-SM Kepler-like RF of the evaluation: 8 banks × 256 rows,
    /// sampling one cell per 32-lane word.
    pub fn kepler_rf() -> Self {
        FaultGeometry {
            banks: 8,
            rows_per_bank: 256,
            cells_per_row: 32,
        }
    }

    /// Total rows across all banks.
    pub fn total_rows(&self) -> usize {
        self.banks * self.rows_per_bank
    }
}

/// Per-row stuck/weak classification of a register-file array at one
/// operating point, derived deterministically from the Monte Carlo SNM
/// distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    /// SRAM cell the array is built from.
    pub cell: SramCell,
    /// Supply voltage the map was derived at (volts).
    pub vdd: f64,
    /// Seed of the Monte Carlo draw.
    pub seed: u64,
    /// Array shape.
    pub geometry: FaultGeometry,
    /// Row health, bank-major: index `bank * rows_per_bank + row`.
    rows: Vec<CellHealth>,
}

/// Splitmix64-style mix of the map seed with a row coordinate, giving every
/// row an independent, order-free RNG stream.
fn row_seed(seed: u64, bank: u64, row: u64) -> u64 {
    let mut z =
        seed ^ bank.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ row.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultMap {
    /// Derives a map for an array of `cell`s at `vdd`: every row draws
    /// `cells_per_row` SNM samples from its own `(seed, bank, row)` stream
    /// and is classified by its worst draw.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is zero.
    pub fn from_montecarlo(
        cell: SramCell,
        vdd: f64,
        geometry: FaultGeometry,
        seed: u64,
    ) -> FaultMap {
        assert!(
            geometry.banks > 0 && geometry.rows_per_bank > 0 && geometry.cells_per_row > 0,
            "fault-map geometry must be non-empty"
        );
        let nominal = cell.snm(vdd, BackGate::Vdd);
        let sigma = sigma_vth_total();
        let mut rows = Vec::with_capacity(geometry.total_rows());
        for bank in 0..geometry.banks {
            for row in 0..geometry.rows_per_bank {
                rows.push(Self::classify_row(
                    nominal,
                    sigma,
                    seed,
                    bank,
                    row,
                    geometry.cells_per_row,
                ));
            }
        }
        FaultMap {
            cell,
            vdd,
            seed,
            geometry,
            rows,
        }
    }

    /// Classifies one row: the worst of `cells` independent SNM draws from
    /// the row's own stream. Pure in `(seed, bank, row)`, so callers may
    /// shard banks across threads and still reproduce
    /// [`FaultMap::from_montecarlo`] bit for bit.
    pub fn classify_row(
        nominal: f64,
        sigma: f64,
        seed: u64,
        bank: usize,
        row: usize,
        cells: usize,
    ) -> CellHealth {
        let mut rng = StdRng::seed_from_u64(row_seed(seed, bank as u64, row as u64));
        let mut health = CellHealth::Healthy;
        for _ in 0..cells {
            let snm = sample_snm(nominal, sigma, &mut rng);
            if snm <= 0.0 {
                return CellHealth::Stuck;
            }
            if snm < SNM_WEAK_THRESHOLD {
                health = CellHealth::Weak;
            }
        }
        health
    }

    /// A map with every row healthy (the no-faults control). Recorded as an
    /// 8T array at STV with seed 0.
    pub fn fault_free(geometry: FaultGeometry) -> FaultMap {
        FaultMap {
            cell: SramCell::T8,
            vdd: crate::device::STV,
            seed: 0,
            geometry,
            rows: vec![CellHealth::Healthy; geometry.total_rows()],
        }
    }

    /// Health of row `row` in bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the map's geometry.
    pub fn health(&self, bank: usize, row: usize) -> CellHealth {
        assert!(
            bank < self.geometry.banks && row < self.geometry.rows_per_bank,
            "fault-map lookup ({bank},{row}) outside geometry {:?}",
            self.geometry
        );
        self.rows[bank * self.geometry.rows_per_bank + row]
    }

    /// Number of stuck rows across all banks.
    pub fn stuck_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|h| **h == CellHealth::Stuck)
            .count()
    }

    /// Number of weak (but not stuck) rows across all banks.
    pub fn weak_rows(&self) -> usize {
        self.rows.iter().filter(|h| **h == CellHealth::Weak).count()
    }

    /// True when every row is healthy — models then behave exactly as if
    /// no map were attached.
    pub fn is_fault_free(&self) -> bool {
        self.rows.iter().all(|h| *h == CellHealth::Healthy)
    }

    /// Serialises the map to a small text artifact: a header with the
    /// operating point and geometry, then the row stream run-length encoded
    /// bank-major (`H120 W3 S1 ...`).
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "faultmap v1\ncell={} vdd={:?} seed={}\nbanks={} rows_per_bank={} cells_per_row={}\n",
            self.cell,
            self.vdd,
            self.seed,
            self.geometry.banks,
            self.geometry.rows_per_bank,
            self.geometry.cells_per_row,
        );
        let mut runs: Vec<(CellHealth, usize)> = Vec::new();
        for &h in &self.rows {
            match runs.last_mut() {
                Some((last, n)) if *last == h => *n += 1,
                _ => runs.push((h, 1)),
            }
        }
        for (i, (h, n)) in runs.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push(h.code());
            s.push_str(&n.to_string());
        }
        s.push('\n');
        s
    }

    /// Parses a map serialised by [`FaultMap::to_text`].
    ///
    /// The parser is hardened against hostile artifacts: the declared
    /// geometry is capped at [`MAX_TEXT_ROWS`] (computed with overflow
    /// checks), and every RLE run is checked against the declared row
    /// count *before* it is materialised — so a `H99999999999` body
    /// cannot allocate past the header's promise.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultMapParseError`] carrying the 1-based line number
    /// and (when one exists) the offending token, for the first malformed
    /// line, unknown cell or health code, oversized or overflowing
    /// geometry, or row-count mismatch against the declared geometry.
    pub fn from_text(text: &str) -> Result<FaultMap, FaultMapParseError> {
        let err = |line: usize, token: Option<&str>, message: String| FaultMapParseError {
            line,
            token: token.map(str::to_string),
            message,
        };
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines
            .next()
            .ok_or_else(|| err(1, None, "empty fault map".into()))?;
        if magic.trim() != "faultmap v1" {
            return Err(err(1, Some(magic), "bad fault-map header".into()));
        }
        // Header fields, remembering the line each came from.
        let mut fields: std::collections::HashMap<String, (String, usize)> =
            std::collections::HashMap::new();
        for (i, line) in lines.by_ref().take(2) {
            for kv in line.split_whitespace() {
                let (k, v) = kv.split_once('=').ok_or_else(|| {
                    err(
                        i + 1,
                        Some(kv),
                        "malformed field (expected key=value)".into(),
                    )
                })?;
                fields.insert(k.to_string(), (v.to_string(), i + 1));
            }
        }
        let field = |k: &str| -> Result<(String, usize), FaultMapParseError> {
            fields
                .get(k)
                .cloned()
                .ok_or_else(|| err(2, None, format!("missing field `{k}`")))
        };
        let (cell_text, cell_line) = field("cell")?;
        let cell = match cell_text.as_str() {
            "6T" => SramCell::T6,
            "8T" => SramCell::T8,
            "9T" => SramCell::T9,
            "10T" => SramCell::T10,
            other => return Err(err(cell_line, Some(other), "unknown cell".into())),
        };
        let parse_num = |k: &str| -> Result<(usize, usize), FaultMapParseError> {
            let (v, line) = field(k)?;
            let n = v
                .parse()
                .map_err(|e| err(line, Some(&v), format!("field `{k}`: {e}")))?;
            Ok((n, line))
        };
        let (vdd_text, vdd_line) = field("vdd")?;
        let vdd: f64 = vdd_text
            .parse()
            .map_err(|e| err(vdd_line, Some(&vdd_text), format!("field `vdd`: {e}")))?;
        let (seed_text, seed_line) = field("seed")?;
        let seed: u64 = seed_text
            .parse()
            .map_err(|e| err(seed_line, Some(&seed_text), format!("field `seed`: {e}")))?;
        let (banks, banks_line) = parse_num("banks")?;
        let (rows_per_bank, _) = parse_num("rows_per_bank")?;
        let (cells_per_row, _) = parse_num("cells_per_row")?;
        let geometry = FaultGeometry {
            banks,
            rows_per_bank,
            cells_per_row,
        };
        // `total_rows()` multiplies unchecked; redo it checked here, and
        // refuse headers promising more than any real artifact holds —
        // otherwise `with_capacity` below is an attacker-sized allocation.
        let total = banks
            .checked_mul(rows_per_bank)
            .filter(|t| *t <= MAX_TEXT_ROWS)
            .ok_or_else(|| {
                err(
                    banks_line,
                    None,
                    format!(
                        "declared geometry {banks}\u{d7}{rows_per_bank} rows overflows the \
                         {MAX_TEXT_ROWS}-row cap"
                    ),
                )
            })?;
        let mut rows = Vec::with_capacity(total);
        for (i, line) in lines {
            for token in line.split_whitespace() {
                let mut chars = token.chars();
                let code = chars
                    .next()
                    .ok_or_else(|| err(i + 1, None, "empty run token".into()))?;
                let health = CellHealth::from_code(code)
                    .ok_or_else(|| err(i + 1, Some(token), format!("unknown health {code:?}")))?;
                let n: usize = chars
                    .as_str()
                    .parse()
                    .map_err(|e| err(i + 1, Some(token), format!("bad run length: {e}")))?;
                // Bound *before* materialising: a run longer than the
                // declared remainder is rejected, not allocated.
                if n > total - rows.len() {
                    return Err(err(
                        i + 1,
                        Some(token),
                        format!(
                            "run of {n} rows overflows the declared total of {total} \
                             ({} already encoded)",
                            rows.len()
                        ),
                    ));
                }
                rows.extend(std::iter::repeat_n(health, n));
            }
        }
        if rows.len() != total {
            return Err(err(
                text.lines().count().max(1),
                None,
                format!("fault map declares {total} rows but encodes {}", rows.len()),
            ));
        }
        Ok(FaultMap {
            cell,
            vdd,
            seed,
            geometry,
            rows,
        })
    }
}

/// Ceiling on the rows (`banks × rows_per_bank`) a text artifact may
/// declare. Real maps are a few thousand rows (the Kepler RF is 2048);
/// the cap keeps a hostile header from turning `from_text` into an
/// attacker-controlled allocation.
pub const MAX_TEXT_ROWS: usize = 1 << 24;

/// A structured [`FaultMap::from_text`] failure: where it happened and
/// what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMapParseError {
    /// 1-based line number in the text artifact.
    pub line: usize,
    /// The offending token, when the failure is anchored to one.
    pub token: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for FaultMapParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault-map text, line {}: {}", self.line, self.message)?;
        if let Some(token) = &self.token {
            write!(f, " (at `{token}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for FaultMapParseError {}

impl std::fmt::Display for FaultMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault map: {} @ {:.2} V seed {} — {} rows, {} stuck, {} weak",
            self.cell,
            self.vdd,
            self.seed,
            self.geometry.total_rows(),
            self.stuck_rows(),
            self.weak_rows(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{NTV, STV};

    fn small_geometry() -> FaultGeometry {
        FaultGeometry {
            banks: 4,
            rows_per_bank: 64,
            cells_per_row: 32,
        }
    }

    #[test]
    fn ntv_map_has_faults_stv_map_is_nearly_clean() {
        let ntv = FaultMap::from_montecarlo(SramCell::T8, NTV, FaultGeometry::kepler_rf(), 42);
        assert!(ntv.weak_rows() > 0, "{ntv}");
        assert!(ntv.stuck_rows() > 0, "{ntv}");
        assert!(!ntv.is_fault_free());
        // At STV the 8T cell has 52 mV more nominal margin: the same
        // variation budget produces (essentially) no failures.
        let stv = FaultMap::from_montecarlo(SramCell::T8, STV, FaultGeometry::kepler_rf(), 42);
        assert!(stv.stuck_rows() == 0, "{stv}");
        assert!(stv.weak_rows() < ntv.weak_rows() / 10, "{stv} vs {ntv}");
    }

    #[test]
    fn same_seed_is_bit_identical_across_serial_and_sharded_builds() {
        // The satellite determinism requirement: the map is a pure function
        // of the seed. Build it serially, then rebuild it with every bank
        // classified on its own thread, and require exact equality.
        let g = small_geometry();
        let serial = FaultMap::from_montecarlo(SramCell::T8, NTV, g, 7);
        let nominal = SramCell::T8.snm(NTV, BackGate::Vdd);
        let sigma = sigma_vth_total();
        let sharded: Vec<CellHealth> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..g.banks)
                .map(|bank| {
                    s.spawn(move || {
                        (0..g.rows_per_bank)
                            .map(|row| {
                                FaultMap::classify_row(
                                    nominal,
                                    sigma,
                                    7,
                                    bank,
                                    row,
                                    g.cells_per_row,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut rebuilt = Vec::new();
        for b in 0..g.banks {
            for r in 0..g.rows_per_bank {
                rebuilt.push(serial.health(b, r));
            }
        }
        assert_eq!(sharded, rebuilt);
        // And a straight re-run is equal too.
        assert_eq!(serial, FaultMap::from_montecarlo(SramCell::T8, NTV, g, 7));
        // Different seeds disagree somewhere.
        assert_ne!(serial, FaultMap::from_montecarlo(SramCell::T8, NTV, g, 8));
    }

    #[test]
    fn fault_free_map_is_fault_free() {
        let m = FaultMap::fault_free(small_geometry());
        assert!(m.is_fault_free());
        assert_eq!(m.stuck_rows(), 0);
        assert_eq!(m.weak_rows(), 0);
        assert_eq!(m.health(3, 63), CellHealth::Healthy);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let m = FaultMap::from_montecarlo(SramCell::T8, NTV, small_geometry(), 99);
        let back = FaultMap::from_text(&m.to_text()).unwrap();
        assert_eq!(m, back);
        let clean = FaultMap::fault_free(small_geometry());
        assert_eq!(clean, FaultMap::from_text(&clean.to_text()).unwrap());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FaultMap::from_text("").is_err());
        assert!(FaultMap::from_text("faultmap v2\n").is_err());
        let truncated = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                         banks=2 rows_per_bank=4 cells_per_row=8\nH7\n";
        assert!(FaultMap::from_text(truncated)
            .unwrap_err()
            .to_string()
            .contains("rows"));
        let bad_code = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                        banks=2 rows_per_bank=4 cells_per_row=8\nH7 X1\n";
        assert!(FaultMap::from_text(bad_code).is_err());
    }

    #[test]
    fn parse_errors_carry_line_and_token() {
        // Unknown health code on body line 4, anchored to its token.
        let bad_code = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                        banks=2 rows_per_bank=4 cells_per_row=8\nH7 X1\n";
        let e = FaultMap::from_text(bad_code).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.token.as_deref(), Some("X1"));
        assert!(e.to_string().contains("line 4"), "{e}");
        assert!(e.to_string().contains("X1"), "{e}");

        // Malformed header field on line 3.
        let bad_field = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                         banks=two rows_per_bank=4 cells_per_row=8\n\n";
        let e = FaultMap::from_text(bad_field).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.token.as_deref(), Some("two"));
    }

    #[test]
    fn hostile_headers_and_runs_are_rejected_before_allocation() {
        // A header promising usize-overflowing (or merely absurd) row
        // counts must fail fast, not allocate.
        let huge = format!(
            "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
             banks={} rows_per_bank=3 cells_per_row=8\nH1\n",
            usize::MAX
        );
        let e = FaultMap::from_text(&huge).unwrap_err();
        assert!(e.to_string().contains("cap"), "{e}");
        let absurd = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                      banks=65536 rows_per_bank=65536 cells_per_row=8\nH1\n";
        assert!(FaultMap::from_text(absurd).is_err());

        // A run longer than the declared total is refused at the token,
        // before `repeat_n` materialises it.
        let bomb = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                    banks=2 rows_per_bank=4 cells_per_row=8\nH99999999999999\n";
        let e = FaultMap::from_text(bomb).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(
            e.to_string().contains("overflows the declared total"),
            "{e}"
        );
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn out_of_range_lookup_panics() {
        FaultMap::fault_free(small_geometry()).health(4, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_geometry_rejected() {
        FaultMap::from_montecarlo(
            SramCell::T8,
            NTV,
            FaultGeometry {
                banks: 0,
                rows_per_bank: 1,
                cells_per_row: 1,
            },
            0,
        );
    }
}
