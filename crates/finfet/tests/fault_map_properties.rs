//! Property tests for the fault-map artifact: text serialisation must
//! round-trip exactly for arbitrary operating points and geometries, and
//! derivation must stay a pure function of the seed.

use prf_finfet::faults::{FaultGeometry, FaultMap};
use prf_finfet::sram::SramCell;
use proptest::prelude::*;

/// Strategy over the cell designs the yield study covers.
fn cell_strategy() -> impl Strategy<Value = SramCell> {
    (0usize..4).prop_map(|i| SramCell::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_round_trip_is_lossless(
        cell in cell_strategy(),
        vdd in 0.20f64..0.50,
        seed in any::<u64>(),
        banks in 1usize..6,
        rows in 1usize..40,
        cells in 1usize..16,
    ) {
        let geometry = FaultGeometry { banks, rows_per_bank: rows, cells_per_row: cells };
        let map = FaultMap::from_montecarlo(cell, vdd, geometry, seed);
        let back = FaultMap::from_text(&map.to_text()).unwrap();
        prop_assert_eq!(&map, &back);
        // A second encode of the decoded map is byte-identical too.
        prop_assert_eq!(map.to_text(), back.to_text());
    }

    #[test]
    fn derivation_is_pure_in_the_seed(
        seed in any::<u64>(),
        banks in 1usize..4,
        rows in 1usize..24,
    ) {
        let geometry = FaultGeometry { banks, rows_per_bank: rows, cells_per_row: 8 };
        let a = FaultMap::from_montecarlo(SramCell::T8, 0.30, geometry, seed);
        let b = FaultMap::from_montecarlo(SramCell::T8, 0.30, geometry, seed);
        prop_assert_eq!(a, b);
    }
}
