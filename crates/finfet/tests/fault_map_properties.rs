//! Property tests for the fault-map artifact: text serialisation must
//! round-trip exactly for arbitrary operating points and geometries, and
//! derivation must stay a pure function of the seed.

use prf_finfet::faults::{FaultGeometry, FaultMap};
use prf_finfet::sram::SramCell;
use proptest::prelude::*;

/// Strategy over the cell designs the yield study covers.
fn cell_strategy() -> impl Strategy<Value = SramCell> {
    (0usize..4).prop_map(|i| SramCell::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_round_trip_is_lossless(
        cell in cell_strategy(),
        vdd in 0.20f64..0.50,
        seed in any::<u64>(),
        banks in 1usize..6,
        rows in 1usize..40,
        cells in 1usize..16,
    ) {
        let geometry = FaultGeometry { banks, rows_per_bank: rows, cells_per_row: cells };
        let map = FaultMap::from_montecarlo(cell, vdd, geometry, seed);
        let back = FaultMap::from_text(&map.to_text()).unwrap();
        prop_assert_eq!(&map, &back);
        // A second encode of the decoded map is byte-identical too.
        prop_assert_eq!(map.to_text(), back.to_text());
    }

    #[test]
    fn derivation_is_pure_in_the_seed(
        seed in any::<u64>(),
        banks in 1usize..4,
        rows in 1usize..24,
    ) {
        let geometry = FaultGeometry { banks, rows_per_bank: rows, cells_per_row: 8 };
        let a = FaultMap::from_montecarlo(SramCell::T8, 0.30, geometry, seed);
        let b = FaultMap::from_montecarlo(SramCell::T8, 0.30, geometry, seed);
        prop_assert_eq!(a, b);
    }

    /// Arbitrary byte soup never panics the text parser: every input is
    /// either a map or an `Err` carrying a line number.
    #[test]
    fn arbitrary_bytes_never_panic_from_text(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = FaultMap::from_text(&text) {
            prop_assert!(e.line >= 1);
        }
    }

    /// Corrupting a valid artifact — byte flips over an alphabet the
    /// grammar actually uses, so mutations reach past the magic line —
    /// must classify (often `Err`, occasionally still-valid), never panic.
    #[test]
    fn mutated_valid_maps_never_panic(
        seed in any::<u64>(),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let geometry = FaultGeometry { banks: 2, rows_per_bank: 8, cells_per_row: 4 };
        let mut text = FaultMap::from_montecarlo(SramCell::T8, 0.30, geometry, seed)
            .to_text()
            .into_bytes();
        const ALPHABET: &[u8] = b"HWS0123456789= .\n\x00\xffbanks";
        for (pos, pick) in &flips {
            let i = *pos as usize % text.len();
            text[i] = ALPHABET[*pick as usize % ALPHABET.len()];
        }
        let text = String::from_utf8_lossy(&text).into_owned();
        if let Err(e) = FaultMap::from_text(&text) {
            prop_assert!(e.line >= 1, "{}", e);
        }
    }
}
