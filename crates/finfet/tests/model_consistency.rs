//! Cross-model consistency: the device, delay, SRAM, Monte Carlo, and
//! array models must agree with one another wherever they overlap — the
//! calibration is only trustworthy if the layers compose.

use prf_finfet::array::{characterize, sweep_voltage, ArraySpec, VoltageMode};
use prf_finfet::delay::{chain_delay_ns, fo4_stage_delay_ns};
use prf_finfet::montecarlo::snm_yield;
use prf_finfet::{BackGate, FinFet, SramCell, SwapTableCam, TechNode, NTV, STV, VTH};

#[test]
fn array_delay_scaling_matches_device_delay_scaling() {
    // The array access-time NTV/STV ratio must equal the inverter-chain
    // ratio — both come from the same device model.
    let stv = characterize(&ArraySpec::rf(224.0, VoltageMode::Stv)).access_time_ns;
    let ntv = characterize(&ArraySpec::rf(224.0, VoltageMode::Ntv)).access_time_ns;
    let dev = FinFet::dual_gate();
    let dev_ratio = dev.inverter_delay_rel(NTV) / dev.inverter_delay_rel(STV);
    assert!(((ntv / stv) - dev_ratio).abs() < 1e-9);
    // And the chain module agrees too.
    let chain_ratio =
        chain_delay_ns(40, NTV, BackGate::Vdd) / chain_delay_ns(40, STV, BackGate::Vdd);
    assert!((chain_ratio - dev_ratio).abs() < 1e-9);
}

#[test]
fn sweep_endpoints_match_discrete_characterisation() {
    // The continuous voltage sweep must pass exactly through the discrete
    // STV/NTV design points (up to the NTV cell-upsizing factor, which
    // only the discrete NTV spec applies).
    let pts = sweep_voltage(256.0, NTV, STV, 31);
    let stv_point = pts.last().unwrap();
    let stv_disc = characterize(&ArraySpec::rf(256.0, VoltageMode::Stv));
    assert!((stv_point.access_energy_pj - stv_disc.access_energy_pj).abs() < 1e-9);
    assert!((stv_point.leakage_mw - stv_disc.leakage_mw).abs() < 1e-9);
    assert!((stv_point.access_time_ns - stv_disc.access_time_ns).abs() < 1e-9);
    let ntv_point = &pts[0];
    let ntv_disc = characterize(&ArraySpec::rf(256.0, VoltageMode::Ntv));
    // Discrete NTV includes upsizing factors; the raw sweep sits below.
    assert!(ntv_point.access_energy_pj <= ntv_disc.access_energy_pj);
    assert!(ntv_point.leakage_mw <= ntv_disc.leakage_mw);
}

#[test]
fn back_gate_energy_factor_consistent_with_capacitance_story() {
    // FRF_low / FRF_high energy = 0.686: between "no change" (1.0) and
    // "all capacitance halves" (0.5), since only part of the switched
    // capacitance is gate capacitance under back-gate control.
    let hi = characterize(&ArraySpec::frf_high()).access_energy_pj;
    let lo = characterize(&ArraySpec::frf_low()).access_energy_pj;
    let factor = lo / hi;
    assert!(factor > 0.5 && factor < 1.0, "factor {factor}");
    // The device model says BG-off halves gate capacitance exactly.
    assert_eq!(FinFet::front_gate_only().gate_cap_rel(), 0.5);
}

#[test]
fn monte_carlo_converges_to_nominal_snm() {
    // With variation, the sampled mean sits below the nominal SNM
    // (mismatch only hurts), within a few sigma/sqrt(n) of the analytic
    // expectation for a folded normal.
    for cell in SramCell::ALL {
        let nominal = cell.snm(STV, BackGate::Vdd);
        let r = snm_yield(cell, STV, BackGate::Vdd, 40_000, 99);
        assert!(r.snm_mean <= nominal + 1e-9, "{cell}: mean above nominal");
        assert!(
            nominal - r.snm_mean < 0.05,
            "{cell}: degradation {:.3} implausibly large",
            nominal - r.snm_mean
        );
    }
}

#[test]
fn yield_is_monotone_in_sample_agreement() {
    // Different large sample counts agree on yield within a point.
    let a = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 20_000, 123).yield_fraction;
    let b = snm_yield(SramCell::T8, NTV, BackGate::Vdd, 80_000, 321).yield_fraction;
    assert!((a - b).abs() < 0.01, "{a} vs {b}");
}

#[test]
fn cam_is_negligible_next_to_any_rf_access() {
    // §III-B's implicit claim: the swapping table costs nothing compared
    // to the register file it steers.
    let cam = SwapTableCam::reference(TechNode::FinFet7);
    let frf = characterize(&ArraySpec::frf_low());
    let cam_pj = cam.search_energy_fj() / 1000.0;
    assert!(
        cam_pj < 0.01 * frf.access_energy_pj,
        "CAM search ({cam_pj} pJ) must be <1% of the cheapest RF access"
    );
    // Delay: under 10% of a 900 MHz cycle, while even FRF_high uses most
    // of its cycle budget at speed.
    assert!(cam.search_delay_ps() / 1000.0 < frf.access_time_ns);
}

#[test]
fn vth_sits_between_subthreshold_and_ntv_behaviour() {
    // Delay curvature changes character around Vth: the relative delay
    // slope (per 50 mV) below Vth is far steeper than above NTV.
    let dev = FinFet::dual_gate();
    let below = dev.inverter_delay_rel(VTH - 0.05) / dev.inverter_delay_rel(VTH);
    let above = dev.inverter_delay_rel(NTV) / dev.inverter_delay_rel(NTV + 0.05);
    assert!(
        below > 2.0 * above,
        "sub-Vth slope ({below:.2}x/50mV) should dwarf the super-NTV slope ({above:.2}x)"
    );
}

#[test]
fn fo4_stage_and_chain_are_linear() {
    let one = fo4_stage_delay_ns(STV, BackGate::Vdd);
    assert!((chain_delay_ns(40, STV, BackGate::Vdd) - 40.0 * one).abs() < 1e-12);
    assert!((chain_delay_ns(7, STV, BackGate::Vdd) - 7.0 * one).abs() < 1e-12);
}
