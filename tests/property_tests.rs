//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use pilot_rf::core::SwappingTable;
use pilot_rf::finfet::array::{characterize, ArraySpec, VoltageMode};
use pilot_rf::isa::{
    CmpOp, KernelBuilder, PredReg, ReconvergenceTable, Reg, StaticRegisterProfile,
};
use pilot_rf::sim::{SimtStack, WarpContext};
use proptest::prelude::*;

proptest! {
    /// The swapping table stays a permutation for ANY hot-register input,
    /// and every (deduplicated) hot register lands in the FRF.
    #[test]
    fn swap_table_is_always_a_permutation(
        n in 1usize..=8,
        hot in proptest::collection::vec(0u8..63, 0..8),
    ) {
        let mut t = SwappingTable::new(n);
        t.apply_hot_registers(&hot.iter().map(|&r| Reg(r)).collect::<Vec<_>>());
        prop_assert!(t.is_permutation());
        // The first n distinct hot registers must live in the FRF.
        let mut seen = Vec::new();
        for &h in &hot {
            if !seen.contains(&h) {
                seen.push(h);
            }
            if seen.len() > n {
                break;
            }
        }
        for &h in seen.iter().take(n) {
            prop_assert!(t.is_frf(Reg(h)), "R{h} must be in the FRF");
        }
        // Lookup round-trips: exactly one architected register maps to
        // each physical register.
        let mut phys_seen = [false; 63];
        for a in 0..63u8 {
            let p = t.lookup(Reg(a)).index();
            prop_assert!(!phys_seen[p]);
            phys_seen[p] = true;
        }
    }

    /// Re-applying any sequence of hot sets keeps at most 2n CAM entries.
    #[test]
    fn swap_table_entry_budget(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u8..63, 0..6),
            1..5,
        ),
    ) {
        let mut t = SwappingTable::new(4);
        for set in &sets {
            t.apply_hot_registers(&set.iter().map(|&r| Reg(r)).collect::<Vec<_>>());
            prop_assert!(t.entries().len() <= 8, "2n = 8 CAM entries max");
            prop_assert!(t.is_permutation());
        }
    }

    /// SIMT stack: lanes are conserved across any sequence of divergent
    /// branches and reconvergence steps.
    #[test]
    fn simt_stack_conserves_lanes(
        initial_mask in 1u32..=u32::MAX,
        takens in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        // A simple diamond kernel gives a legal reconvergence table.
        let mut kb = KernelBuilder::new("p");
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 1); // 0
        let else_ = kb.new_label();
        let join = kb.new_label();
        kb.bra_if(PredReg(0), false, else_); // 1
        kb.mov_imm(Reg(1), 1); // 2
        kb.bra(join); // 3
        kb.place_label(else_);
        kb.mov_imm(Reg(1), 2); // 4
        kb.place_label(join);
        kb.exit(); // 5
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);

        let mut stack = SimtStack::new(initial_mask);
        for t in takens {
            if stack.is_done() {
                break;
            }
            let active = stack.active_mask();
            let taken = t & active;
            stack.branch(1, 4, taken, &rt);
            prop_assert_eq!(stack.live_mask(), initial_mask, "no lane may vanish");
            // Step the top entry to its reconvergence point to unwind.
            stack.advance(5);
        }
        prop_assert_eq!(stack.live_mask(), initial_mask);
    }

    /// Exiting lanes in arbitrary batches always drains the stack without
    /// leaking lanes.
    #[test]
    fn simt_stack_exit_drains(
        initial_mask in 1u32..=u32::MAX,
        exits in proptest::collection::vec(any::<u32>(), 1..8),
    ) {
        let mut stack = SimtStack::new(initial_mask);
        let mut live = initial_mask;
        for e in exits {
            let batch = e & live;
            stack.exit_lanes(batch);
            live &= !batch;
            prop_assert_eq!(stack.live_mask(), live);
            prop_assert_eq!(stack.is_done(), live == 0);
        }
        stack.exit_lanes(live);
        prop_assert!(stack.is_done());
    }

    /// Static register analysis: total occurrences equal the sum over
    /// instructions of their access counts, and top_n coverage is
    /// monotonically non-decreasing in n.
    #[test]
    fn static_profile_consistency(
        regs in proptest::collection::vec((0u8..20, 0u8..20, 0u8..20), 1..30),
    ) {
        let mut kb = KernelBuilder::new("p");
        for &(d, a, b) in &regs {
            kb.iadd(Reg(d), Reg(a), Reg(b));
        }
        kb.exit();
        let k = kb.build().unwrap();
        let p = StaticRegisterProfile::analyze(&k);
        prop_assert_eq!(p.total(), 3 * regs.len() as u64);
        let mut prev = 0.0;
        for n in 1..=8 {
            let c = p.coverage(&p.top_n(n));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        prop_assert!(prev <= 1.0 + 1e-12);
    }

    /// Array model: energy and leakage are monotone in size; energy is
    /// monotone in voltage; all outputs are positive and finite.
    #[test]
    fn array_model_monotonicity(
        kb1 in 2.0f64..200.0,
        delta in 1.0f64..100.0,
    ) {
        let small = characterize(&ArraySpec::rf(kb1, VoltageMode::Stv));
        let big = characterize(&ArraySpec::rf(kb1 + delta, VoltageMode::Stv));
        prop_assert!(big.access_energy_pj > small.access_energy_pj);
        prop_assert!(big.leakage_mw > small.leakage_mw);
        prop_assert!(big.area_mm2 > small.area_mm2);
        prop_assert!(big.access_time_ns > small.access_time_ns);
        let ntv = characterize(&ArraySpec::rf(kb1, VoltageMode::Ntv));
        prop_assert!(ntv.access_energy_pj < small.access_energy_pj);
        prop_assert!(ntv.access_time_ns > small.access_time_ns);
        for c in [small, big, ntv] {
            prop_assert!(c.access_energy_pj.is_finite() && c.access_energy_pj > 0.0);
            prop_assert!(c.leakage_mw.is_finite() && c.leakage_mw > 0.0);
        }
    }

    /// Kernel builder + reconvergence: every validated kernel gets a
    /// reconvergence table covering every instruction, and all branch
    /// targets stay in range.
    #[test]
    fn kernels_always_get_full_reconvergence_tables(
        body in proptest::collection::vec((0u8..10, 0u8..10), 1..20),
        loop_trips in 1u32..5,
    ) {
        let mut kb = KernelBuilder::new("p");
        kb.mov_imm(Reg(15), 0);
        let top = kb.new_label();
        kb.place_label(top);
        for &(a, b) in &body {
            kb.iadd(Reg(a), Reg(a), Reg(b));
        }
        kb.iadd_imm(Reg(15), Reg(15), 1);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(15), loop_trips);
        kb.bra_if(PredReg(0), true, top);
        kb.exit();
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        prop_assert_eq!(rt.len(), k.len());
        for (pc, i) in k.instructions().iter().enumerate() {
            if let Some(t) = i.target {
                prop_assert!(t < k.len());
            }
            if let Some(r) = rt.reconvergence_pc(pc) {
                prop_assert!(r < k.len());
            }
        }
    }
}

#[test]
fn warp_context_register_file_is_sized_exactly() {
    let w = WarpContext::new(0, 0, pilot_rf::isa::CtaId(0), 0, u32::MAX, 63, 0);
    assert_eq!(w.regs.len(), 32);
    assert!(w.regs.iter().all(|lane| lane.len() == 63));
}
