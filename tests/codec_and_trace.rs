//! Integration tests for the binary kernel codec and the pipeline trace.

use pilot_rf::isa::{
    decode_kernel, encode_kernel, parse_kernel, CmpOp, GridConfig, KernelBuilder, PredReg, Reg,
};
use pilot_rf::sim::{BaselineRf, Gpu, GpuConfig, TraceEvent};
use proptest::prelude::*;

#[test]
fn suite_kernels_roundtrip_through_the_codec() {
    for w in pilot_rf::workloads::suite() {
        for launch in &w.launches {
            let words = encode_kernel(&launch.kernel);
            let decoded = decode_kernel(launch.kernel.name(), &words).unwrap();
            assert_eq!(
                launch.kernel.instructions(),
                decoded.instructions(),
                "{} failed to round-trip",
                w.name
            );
        }
    }
}

#[test]
fn assembled_kernel_roundtrips_through_the_codec() {
    let k = parse_kernel(
        r"
        .kernel mixed
        mov     R0, %gtid
        mov     R1, #3.25f
        ldg     R2, [R0 + 64]
    spin:
        imad    R3, R2, R2, R3
        iadd    R4, R4, #1
        setp.ult P2, R4, #7
        @P2 bra spin
        @!P0 stg [R0], R3
        exit
    ",
    )
    .unwrap();
    let k2 = decode_kernel("mixed", &encode_kernel(&k)).unwrap();
    assert_eq!(k.instructions(), k2.instructions());
}

proptest! {
    /// Randomly generated straight-line kernels always round-trip.
    #[test]
    fn random_kernels_roundtrip(
        instrs in proptest::collection::vec(
            (0u8..30, 0u8..30, 0u8..30, any::<u32>()),
            1..40,
        ),
    ) {
        let mut kb = KernelBuilder::new("prop");
        for (d, a, b, imm) in &instrs {
            kb.iadd(Reg(*d), Reg(*a), Reg(*b));
            kb.mov_imm(Reg(*d), *imm);
        }
        kb.setp_imm(PredReg(0), CmpOp::Ne, Reg(instrs[0].0), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let k2 = decode_kernel("prop", &encode_kernel(&k)).unwrap();
        prop_assert_eq!(k.instructions(), k2.instructions());
    }
}

#[test]
fn trace_records_full_warp_lifecycle() {
    let mut kb = KernelBuilder::new("traced");
    kb.mov_imm(Reg(0), 1);
    kb.bar();
    kb.iadd_imm(Reg(1), Reg(0), 2);
    kb.exit();
    let k = kb.build().unwrap();

    let config = GpuConfig {
        trace_capacity: 4096,
        global_mem_words: 1 << 12,
        ..GpuConfig::kepler_single_sm()
    };
    let mut gpu = Gpu::new(config);
    let r = gpu
        .run(k, GridConfig::new(2, 64), &|_| {
            Box::new(BaselineRf::stv(24))
        })
        .unwrap();

    let dispatches = r
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::CtaDispatch { .. }))
        .count();
    let issues = r
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Issue { .. }))
        .count();
    let barriers = r
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::BarrierWait { .. }))
        .count();
    let finishes = r
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::WarpFinish { .. }))
        .count();

    assert_eq!(dispatches, 2, "two CTAs dispatched");
    assert_eq!(issues as u64, r.stats.instructions, "every issue traced");
    assert_eq!(barriers, 4, "each of 4 warps hits the barrier once");
    assert_eq!(finishes, 4, "each warp finish traced");
    // Sorted by cycle.
    assert!(r.trace.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
}

#[test]
fn trace_disabled_by_default() {
    let mut kb = KernelBuilder::new("quiet");
    kb.mov_imm(Reg(0), 1);
    kb.exit();
    let config = GpuConfig {
        global_mem_words: 1 << 12,
        ..GpuConfig::kepler_single_sm()
    };
    let mut gpu = Gpu::new(config);
    let r = gpu
        .run(kb.build().unwrap(), GridConfig::new(1, 32), &|_| {
            Box::new(BaselineRf::stv(24))
        })
        .unwrap();
    assert!(r.trace.is_empty());
}
