//! Paper-shape assertions: the headline relationships the reproduction
//! must preserve (who wins, roughly by how much, in which direction).
//!
//! These run on a fast subset of the suite; the full sweeps live in the
//! `prf-bench` binaries and are recorded in EXPERIMENTS.md.

use pilot_rf::core::{
    run_experiment, LeakageModel, PartitionedRfConfig, ProfilingStrategy, RfKind,
};
use pilot_rf::finfet::array::{characterize, ArraySpec};
use pilot_rf::sim::{GpuConfig, RfPartition};
use pilot_rf::workloads::{by_name, Workload};

fn gpu() -> GpuConfig {
    GpuConfig::kepler_single_sm()
}

fn run(w: &Workload, rf: &RfKind) -> pilot_rf::core::ExperimentResult {
    run_experiment(&gpu(), rf, &w.launches, &w.mem_init).unwrap()
}

/// Fig. 2's premise: a small register subset dominates accesses.
#[test]
fn top3_registers_dominate_accesses() {
    for name in ["backprop", "srad", "kmeans"] {
        let w = by_name(name).unwrap();
        let r = run(&w, &RfKind::MrfStv);
        let share = r.stats.reg_accesses.top_share(3);
        assert!(
            share > 0.40,
            "{name}: top-3 share {share} should be large (paper avg 62%)"
        );
        assert!(share < 0.95, "{name}: but not the whole file");
    }
}

/// Fig. 4 Category 2: compiler profiling misses dynamically hot registers.
#[test]
fn category2_compiler_identification_is_poor() {
    let w = by_name("sgemm").unwrap();
    let base = run(&w, &RfKind::MrfStv);
    let hist = &base.stats.reg_accesses;
    let part = run(
        &w,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
    );
    let compiler_cov = hist.coverage(&part.telemetry.compiler_hot_regs);
    let pilot_cov = hist.coverage(&part.telemetry.pilot_hot_regs);
    assert!(
        pilot_cov > compiler_cov + 0.10,
        "pilot ({pilot_cov:.2}) must beat compiler ({compiler_cov:.2}) by >10% on sgemm"
    );
}

/// Fig. 4 Category 3: the pilot warp is unrepresentative on LIB.
#[test]
fn category3_pilot_identification_is_poor() {
    let w = by_name("LIB").unwrap();
    let base = run(&w, &RfKind::MrfStv);
    let hist = &base.stats.reg_accesses;
    let part = run(
        &w,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
    );
    let compiler_cov = hist.coverage(&part.telemetry.compiler_hot_regs);
    let pilot_cov = hist.coverage(&part.telemetry.pilot_hot_regs);
    assert!(
        compiler_cov > pilot_cov + 0.10,
        "compiler ({compiler_cov:.2}) must beat pilot ({pilot_cov:.2}) by >10% on LIB"
    );
}

/// Fig. 11: the partitioned RF saves about half the dynamic energy, and
/// beats running the whole MRF at NTV.
#[test]
fn partitioned_dynamic_saving_beats_ntv() {
    let w = by_name("srad").unwrap();
    let part = run(
        &w,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
    );
    let ntv = run(&w, &RfKind::MrfNtv { latency: 3 });
    assert!(
        part.dynamic_saving() > 0.45,
        "partitioned {}",
        part.dynamic_saving()
    );
    assert!(
        part.dynamic_saving() > ntv.dynamic_saving(),
        "partitioned ({:.3}) must beat all-NTV ({:.3})",
        part.dynamic_saving(),
        ntv.dynamic_saving()
    );
    // §V-B: all-NTV saves ~47%.
    assert!((ntv.dynamic_saving() - 0.47).abs() < 0.02);
}

/// §V-B leakage: 39% saving from the FRF/SRF split.
#[test]
fn leakage_saving_matches_paper() {
    let l = LeakageModel::from_finfet();
    assert!((l.partitioned_saving() - 0.39).abs() < 0.02);
    assert!((l.frf_mw / l.mrf_stv_mw - 0.215).abs() < 0.01);
    assert!((l.srf_mw / l.mrf_stv_mw - 0.397).abs() < 0.01);
}

/// Fig. 12 ordering on a latency-tolerant workload: partitioned costs less
/// than all-NTV.
#[test]
fn performance_ordering_partitioned_beats_ntv() {
    let w = by_name("srad").unwrap();
    let base = run(&w, &RfKind::MrfStv);
    let part = run(
        &w,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
    );
    let ntv = run(&w, &RfKind::MrfNtv { latency: 3 });
    assert!(
        part.normalized_time(&base) < ntv.normalized_time(&base),
        "partitioned ({:.3}) must be faster than all-NTV ({:.3})",
        part.normalized_time(&base),
        ntv.normalized_time(&base)
    );
}

/// §V-C: SRF latency sensitivity is modest and (up to simulation noise)
/// monotone. Averaged over jitter seeds like the bench harness does.
#[test]
fn srf_latency_sensitivity_is_monotone() {
    let w = by_name("btree").unwrap();
    let mut cycles = Vec::new();
    for lat in [3u32, 5] {
        let cfg = PartitionedRfConfig {
            srf_latency: lat,
            strategy: ProfilingStrategy::Hybrid,
            ..PartitionedRfConfig::without_adaptive(gpu().num_rf_banks)
        };
        let mut total = 0u64;
        for seed in 0..5 {
            let g = GpuConfig {
                jitter_seed: seed,
                ..gpu()
            };
            total += run_experiment(
                &g,
                &RfKind::Partitioned(cfg.clone()),
                &w.launches,
                &w.mem_init,
            )
            .unwrap()
            .cycles;
        }
        cycles.push(total / 5);
    }
    let ratio = cycles[1] as f64 / cycles[0] as f64;
    assert!(
        ratio > 0.99,
        "slower SRF cannot consistently speed things up: {cycles:?}"
    );
    assert!(
        ratio < 1.25,
        "5-cycle SRF should cost modestly, got {ratio}"
    );
}

/// Fig. 13's energy anchors at the circuit level.
#[test]
fn rfc_energy_scaling_anchors() {
    let mrf = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
    let small = characterize(&ArraySpec::rfc(6, 8, 2, 1, 1)).access_energy_pj;
    let ported = characterize(&ArraySpec::rfc(6, 8, 8, 4, 1)).access_energy_pj;
    assert!(
        (small / mrf - 0.37).abs() < 0.03,
        "R2W1 anchor: {}",
        small / mrf
    );
    assert!(
        (ported / mrf - 3.0).abs() < 0.15,
        "R8W4 anchor: {}",
        ported / mrf
    );
}

/// Fig. 10: adaptive FRF actually uses both power modes across the suite.
#[test]
fn adaptive_frf_uses_both_modes() {
    let mut any_low = false;
    let mut any_high = false;
    for name in ["srad", "sad", "nw"] {
        let w = by_name(name).unwrap();
        let r = run(
            &w,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
        );
        let pa = &r.stats.partition_accesses;
        if pa.accesses(RfPartition::FrfLow) > 0 {
            any_low = true;
        }
        if pa.accesses(RfPartition::FrfHigh) > 0 {
            any_high = true;
        }
    }
    assert!(any_high, "high-power FRF accesses expected");
    assert!(
        any_low,
        "low-power FRF accesses expected somewhere in the suite"
    );
}

/// Table I invariants for the whole suite.
#[test]
fn suite_matches_table1_shapes() {
    let suite = pilot_rf::workloads::suite();
    assert_eq!(suite.len(), 17);
    for w in &suite {
        assert_eq!(w.regs_per_thread(), w.table1.regs_per_thread, "{}", w.name);
        assert_eq!(w.threads_per_cta(), w.table1.threads_per_cta, "{}", w.name);
    }
}

/// Pilot-runtime ordering: LIB/WP pilots dominate; bulk workloads do not.
#[test]
fn pilot_runtime_ordering() {
    let frac = |name: &str| {
        let w = by_name(name).unwrap();
        let r = run(
            &w,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu().num_rf_banks)),
        );
        r.per_launch[0].pilot_runtime_fraction().unwrap()
    };
    let bfs = frac("BFS");
    let lib = frac("LIB");
    assert!(bfs < 0.25, "BFS pilot fraction should be small, got {bfs}");
    assert!(lib > 0.40, "LIB pilot fraction should be large, got {lib}");
}
