//! Cross-crate integration tests: full kernels through the cycle-level
//! pipeline, checking functional results and exact statistics.

use pilot_rf::core::{run_experiment, Launch, PartitionedRfConfig, RfKind};
use pilot_rf::isa::{CmpOp, GridConfig, KernelBuilder, PredReg, Reg, SpecialReg};
use pilot_rf::sim::{BaselineRf, Gpu, GpuConfig, RfPartition, SchedulerPolicy};

fn gpu_config() -> GpuConfig {
    GpuConfig {
        global_mem_words: 1 << 16,
        ..GpuConfig::kepler_single_sm()
    }
}

/// A saxpy-like kernel: y[i] = a*x[i] + y[i].
fn saxpy_kernel() -> pilot_rf::isa::Kernel {
    let mut kb = KernelBuilder::new("saxpy");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    kb.iadd_imm(Reg(1), Reg(0), 0x1000); // &x[i]
    kb.iadd_imm(Reg(2), Reg(0), 0x2000); // &y[i]
    kb.ldg(Reg(3), Reg(1), 0);
    kb.ldg(Reg(4), Reg(2), 0);
    kb.imul_imm(Reg(3), Reg(3), 3); // a = 3
    kb.iadd(Reg(4), Reg(4), Reg(3));
    kb.stg(Reg(2), Reg(4), 0);
    kb.exit();
    kb.build().unwrap()
}

#[test]
fn saxpy_computes_correct_results_end_to_end() {
    let config = gpu_config();
    let mut gpu = Gpu::new(config.clone());
    let n = 256u32;
    gpu.global_mem().load(0x1000, &(0..n).collect::<Vec<u32>>());
    gpu.global_mem()
        .load(0x2000, &(0..n).map(|i| 10 * i).collect::<Vec<u32>>());
    let r = gpu
        .run(saxpy_kernel(), GridConfig::new(2, 128), &|_| {
            Box::new(BaselineRf::stv(24))
        })
        .unwrap();
    assert!(r.cycles > 0);
    for i in [0u32, 1, 77, 255] {
        assert_eq!(
            gpu.global_mem_ref().read(0x2000 + i),
            10 * i + 3 * i,
            "y[{i}] must be a*x + y"
        );
    }
}

#[test]
fn saxpy_results_are_identical_under_every_rf_organisation() {
    // The RF organisation is a *timing* artefact; architectural results
    // must be bit-identical.
    let config = gpu_config();
    let kinds = [
        RfKind::MrfStv,
        RfKind::MrfNtv { latency: 3 },
        RfKind::Partitioned(PartitionedRfConfig::paper_default(config.num_rf_banks)),
        RfKind::Rfc(pilot_rf::core::RfcConfig::paper_default(
            config.num_rf_banks,
            config.max_warps_per_sm,
        )),
    ];
    let launches = [Launch::new(saxpy_kernel(), GridConfig::new(2, 128))];
    let x: Vec<u32> = (0..256).collect();
    let y: Vec<u32> = (0..256).map(|i| 7 * i + 1).collect();
    let mut reference: Option<Vec<u64>> = None;
    for kind in kinds {
        let r = run_experiment(
            &config,
            &kind,
            &launches,
            &[(0x1000, x.clone()), (0x2000, y.clone())],
        )
        .unwrap();
        // Use the per-register access histogram as an architectural
        // fingerprint: it only depends on the executed instruction stream.
        let fp: Vec<u64> = r.stats.reg_accesses.counts().to_vec();
        match &reference {
            None => reference = Some(fp),
            Some(prev) => assert_eq!(prev, &fp, "{} diverged", r.rf_name),
        }
    }
}

#[test]
fn divergent_reduction_kernel_is_correct() {
    // Tree reduction over shuffle: every lane ends with the warp sum.
    let mut kb = KernelBuilder::new("reduce");
    kb.mov_special(Reg(0), SpecialReg::LaneId);
    kb.iadd_imm(Reg(1), Reg(0), 1); // value = lane + 1
    for step in [16u32, 8, 4, 2, 1] {
        // partner = lane ^ step
        kb.mov_imm(Reg(2), step);
        kb.ixor(Reg(3), Reg(0), Reg(2));
        kb.shfl(Reg(4), Reg(1), Reg(3));
        kb.iadd(Reg(1), Reg(1), Reg(4));
    }
    kb.mov_special(Reg(5), SpecialReg::GlobalTid);
    kb.stg(Reg(5), Reg(1), 0);
    kb.exit();
    let k = kb.build().unwrap();

    let mut gpu = Gpu::new(gpu_config());
    gpu.run(k, GridConfig::new(1, 32), &|_| {
        Box::new(BaselineRf::stv(24))
    })
    .unwrap();
    // Sum of 1..=32 = 528 in every lane.
    for lane in 0..32u32 {
        assert_eq!(gpu.global_mem_ref().read(lane), 528);
    }
}

#[test]
fn data_dependent_loops_terminate_and_count() {
    // Per-thread trip counts read from memory; total dynamic instructions
    // must equal the sum over threads of their loop work.
    let mut kb = KernelBuilder::new("ddloop");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    kb.iadd_imm(Reg(1), Reg(0), 0x400);
    kb.ldg(Reg(2), Reg(1), 0); // bound
    kb.mov_imm(Reg(3), 0);
    kb.mov_imm(Reg(4), 0);
    let top = kb.new_label();
    kb.place_label(top);
    kb.iadd_imm(Reg(4), Reg(4), 2);
    kb.iadd_imm(Reg(3), Reg(3), 1);
    kb.setp(PredReg(0), CmpOp::Lt, Reg(3), Reg(2));
    kb.bra_if(PredReg(0), true, top);
    kb.stg(Reg(0), Reg(4), 0);
    kb.exit();
    let k = kb.build().unwrap();

    let mut gpu = Gpu::new(gpu_config());
    // Lane i of warp w gets bound (i % 7) + 1.
    let bounds: Vec<u32> = (0..64).map(|i| (i % 7) + 1).collect();
    gpu.global_mem().load(0x400, &bounds);
    gpu.run(k, GridConfig::new(1, 64), &|_| {
        Box::new(BaselineRf::stv(24))
    })
    .unwrap();
    for (i, b) in bounds.iter().enumerate() {
        assert_eq!(
            gpu.global_mem_ref().read(i as u32),
            2 * b,
            "thread {i} must run {b} iterations"
        );
    }
}

#[test]
fn partitioned_rf_routes_majority_of_skewed_accesses_to_frf() {
    let w = pilot_rf::workloads::by_name("backprop").unwrap();
    let config = gpu_config();
    let r = run_experiment(
        &config,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(config.num_rf_banks)),
        &w.launches,
        &w.mem_init,
    )
    .unwrap();
    let pa = &r.stats.partition_accesses;
    let frf = pa.fraction(RfPartition::FrfHigh) + pa.fraction(RfPartition::FrfLow);
    assert!(frf > 0.5, "FRF should capture most accesses, got {frf}");
    assert!(r.dynamic_saving() > 0.40, "saving {}", r.dynamic_saving());
    assert!((r.leakage_saving() - 0.39).abs() < 0.02);
}

#[test]
fn schedulers_all_complete_the_same_work() {
    let w = pilot_rf::workloads::by_name("srad").unwrap();
    let mut instr_counts = Vec::new();
    for policy in [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 8,
        },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ] {
        let config = GpuConfig {
            scheduler: policy,
            ..gpu_config()
        };
        let r = run_experiment(&config, &RfKind::MrfStv, &w.launches, &w.mem_init).unwrap();
        instr_counts.push(r.stats.instructions);
    }
    assert!(
        instr_counts.windows(2).all(|w| w[0] == w[1]),
        "all schedulers execute the same instructions: {instr_counts:?}"
    );
}

#[test]
fn multi_sm_runs_match_single_sm_functionally() {
    let kernel = saxpy_kernel;
    let grid = GridConfig::new(8, 128);
    let x: Vec<u32> = (0..1024).collect();
    let y: Vec<u32> = (0..1024).map(|i| i + 5).collect();
    let run = |sms: usize| -> Vec<u32> {
        let config = GpuConfig {
            num_sms: sms,
            ..gpu_config()
        };
        let mut gpu = Gpu::new(config);
        gpu.global_mem().load(0x1000, &x);
        gpu.global_mem().load(0x2000, &y);
        gpu.run(kernel(), grid, &|_| Box::new(BaselineRf::stv(24)))
            .unwrap();
        (0..1024)
            .map(|i| gpu.global_mem_ref().read(0x2000 + i))
            .collect()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn backprop_two_kernels_remap_between_launches() {
    // The paper: backprop's two kernels have different hot registers; the
    // second launch must re-profile.
    let w = pilot_rf::workloads::by_name("backprop").unwrap();
    let config = gpu_config();
    let r = run_experiment(
        &config,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(config.num_rf_banks)),
        &w.launches,
        &w.mem_init,
    )
    .unwrap();
    // Telemetry holds the *last* launch's pilot set: it must contain the
    // second kernel's hot registers (R4/R5/R6-family), not the first's.
    let hot = &r.telemetry.pilot_hot_regs;
    assert!(
        hot.contains(&Reg(4)) || hot.contains(&Reg(5)) || hot.contains(&Reg(6)),
        "second-kernel hot set expected, got {hot:?}"
    );
}
